#!/usr/bin/env python3
"""Fixture tests for tools/wlan_lint.py.

Each rule is proven live by a known-bad fixture that must fire and a
known-good / suppressed fixture that must pass.  Run directly or through
ctest (tools.wlan_lint, label: unit).
"""

import io
import os
import sys
import unittest
from contextlib import redirect_stderr, redirect_stdout

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
FIXTURES = os.path.join(REPO, "tests", "tools", "fixtures")
sys.path.insert(0, os.path.join(REPO, "tools"))

import wlan_lint  # noqa: E402


def run_lint(*argv):
    """Invoke wlan_lint.main; return (exit_code, [stdout lines])."""
    out = io.StringIO()
    err = io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = wlan_lint.main(list(argv))
    lines = [l for l in out.getvalue().splitlines() if l.strip()]
    return code, lines


def fixture(name):
    return os.path.join(FIXTURES, name)


class WallClockRule(unittest.TestCase):
    def test_bad_fires_every_hazard(self):
        code, lines = run_lint("--root", REPO, "--rule", "wall-clock",
                               "--quiet", fixture("wall_clock_bad.cpp"))
        self.assertEqual(code, 1)
        hits = "\n".join(lines)
        self.assertIn("steady_clock", hits)
        self.assertIn("system_clock", hits)
        self.assertIn("random_device", hits)
        self.assertIn("rand()", hits)
        self.assertIn("time()", hits)
        # steady, system, random_device, srand, rand, time
        self.assertGreaterEqual(len(lines), 6)

    def test_good_and_suppressed_pass(self):
        code, lines = run_lint("--root", REPO, "--rule", "wall-clock",
                               "--quiet", fixture("wall_clock_good.cpp"))
        self.assertEqual(code, 0, lines)


class UnorderedIterationRule(unittest.TestCase):
    def test_bad_fires_range_for_and_iterator_walk(self):
        code, lines = run_lint("--root", REPO, "--rule",
                               "unordered-iteration", "--quiet",
                               fixture("unordered_iteration_bad.cpp"))
        self.assertEqual(code, 1)
        self.assertEqual(len(lines), 2, lines)
        self.assertIn("range-for", lines[0])
        self.assertIn("iterator walk", lines[1])

    def test_good_ordered_and_annotated_pass(self):
        code, lines = run_lint("--root", REPO, "--rule",
                               "unordered-iteration", "--quiet",
                               fixture("unordered_iteration_good.cpp"))
        self.assertEqual(code, 0, lines)


class RngSeedRule(unittest.TestCase):
    def test_bad_fires_literal_and_wall_seeds(self):
        code, lines = run_lint("--root", REPO, "--rule", "rng-seed",
                               "--quiet", fixture("rng_seed_bad.cpp"))
        self.assertEqual(code, 1)
        hits = "\n".join(lines)
        self.assertIn("'12345'", hits)
        self.assertIn("0xDEADBEEFULL", hits)
        self.assertIn("wall clock", hits)
        # literal, hex literal, literal-xor, wall-clock, init-list literal
        self.assertEqual(len(lines), 5, lines)

    def test_good_seed_derivations_pass(self):
        code, lines = run_lint("--root", REPO, "--rule", "rng-seed",
                               "--quiet", fixture("rng_seed_good.cpp"))
        self.assertEqual(code, 0, lines)


class LayerDagRule(unittest.TestCase):
    def run_dag(self, rel):
        root = fixture("dag_repo")
        return run_lint("--root", root, "--rule", "layer-dag", "--quiet",
                        os.path.join(root, rel))

    def test_util_must_not_see_obs(self):
        code, lines = self.run_dag("src/util/bad_sees_obs.hpp")
        self.assertEqual(code, 1)
        self.assertEqual(len(lines), 1, lines)
        self.assertIn('"obs/metrics.hpp"', lines[0])

    def test_phy_must_not_see_sim(self):
        code, lines = self.run_dag("src/phy/bad_sees_sim.hpp")
        self.assertEqual(code, 1)
        self.assertEqual(len(lines), 1, lines)
        self.assertIn('"sim/channel.hpp"', lines[0])

    def test_core_must_not_see_sim(self):
        code, lines = self.run_dag("src/core/bad_sees_sim.cpp")
        self.assertEqual(code, 1)
        self.assertEqual(len(lines), 1, lines)
        self.assertIn('"sim/network.hpp"', lines[0])

    def test_legal_edges_pass(self):
        code, lines = self.run_dag("src/sim/good_edges.cpp")
        self.assertEqual(code, 0, lines)

    def test_transitive_closure_matches_architecture_doc(self):
        # Spot-check the closure against docs/ARCHITECTURE.md invariants.
        allowed = wlan_lint.ALLOWED_INCLUDES
        self.assertNotIn("obs", allowed["util"])
        self.assertNotIn("sim", allowed["core"])
        self.assertNotIn("exp", allowed["sim"])
        self.assertIn("util", allowed["rate"])   # via phy -> obs -> util
        self.assertIn("obs", allowed["workload"])  # via sim
        for layer, deps in wlan_lint.DIRECT_DEPS.items():
            self.assertLessEqual(deps | {layer}, allowed[layer])


class SuppressionSyntax(unittest.TestCase):
    def test_reasonless_and_unknown_rule_are_findings(self):
        code, lines = run_lint("--root", REPO, "--quiet",
                               fixture("suppression_bad.cpp"))
        self.assertEqual(code, 1)
        hits = "\n".join(lines)
        self.assertIn("without a reason", hits)
        self.assertIn("unknown rule", hits)
        # The reasonless suppression must not mask the steady_clock read.
        self.assertIn("steady_clock", hits)


class RepoIsClean(unittest.TestCase):
    def test_default_scan_is_clean(self):
        # The committed tree must stay at zero unsuppressed findings; this
        # is the same gate scripts/check.sh and CI run.
        code, lines = run_lint("--root", REPO, "--quiet")
        self.assertEqual(code, 0, "\n".join(lines))


if __name__ == "__main__":
    unittest.main(verbosity=2)

// Fixture: every construction below must fire the rng-seed rule.
#include <ctime>

#include "util/rng.hpp"

namespace fixture {

double bad_literal() {
  wlan::util::Rng rng(12345);  // fires: literal seed
  return rng.uniform01();
}

double bad_hex_literal() {
  wlan::util::Rng rng{0xDEADBEEFULL};  // fires: literal seed (hex, braces)
  return rng.uniform01();
}

double bad_literal_xor() {
  wlan::util::Rng rng(0x1234ULL ^ 42);  // fires: literals only
  return rng.uniform01();
}

double bad_wall_clock_seed() {
  wlan::util::Rng rng(time(nullptr));  // fires: wall-clock seed
  return rng.uniform01();
}

struct BadMember {
  explicit BadMember() : rng_(99) {}  // fires: literal init-list seed
  wlan::util::Rng rng_;
};

}  // namespace fixture

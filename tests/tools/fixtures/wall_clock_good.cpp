// Fixture: must produce zero wall-clock findings.
// One suppressed legitimate site, plus look-alikes that must NOT fire:
// comments, strings, and identifiers that merely contain "time".
#include <chrono>
#include <cstdint>

namespace fixture {

// Mentioning std::chrono::steady_clock in a comment must not fire.
constexpr const char* kDoc = "std::chrono::steady_clock in a string";

std::int64_t simulated_time(std::int64_t now_us) {
  // time_us, end_time(x) style identifiers must not fire.
  const std::int64_t end_time_us = now_us + 10;
  return end_time_us;
}

std::int64_t end_time(std::int64_t t) { return t; }

double wall_probe() {
  // wlan-lint: allow(wall-clock) — host-side progress timing fixture
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

}  // namespace fixture

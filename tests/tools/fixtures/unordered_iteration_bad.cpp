// Fixture: both loops below must fire the unordered-iteration rule.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

void bad_range_for() {
  std::unordered_map<int, double> acc;
  acc[1] = 2.0;
  for (const auto& [k, v] : acc) {  // fires: range-for over unordered_map
    std::printf("%d %f\n", k, v);
  }
}

void bad_iterator_walk() {
  std::unordered_set<std::string> seen;
  seen.insert("x");
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // fires: .begin()
    std::printf("%s\n", it->c_str());
  }
}

}  // namespace fixture

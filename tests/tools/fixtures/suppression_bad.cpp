// Fixture: a suppression without a reason is itself a finding, and it does
// NOT suppress the underlying diagnostic.
#include <chrono>

namespace fixture {

long reasonless() {
  // wlan-lint: allow(wall-clock)
  auto t = std::chrono::steady_clock::now();  // still fires
  return t.time_since_epoch().count();
}

long unknown_rule() {
  // wlan-lint: allow(no-such-rule) — typo'd rule names must be reported
  auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

}  // namespace fixture

// Fixture: every line below must fire the wall-clock rule.
// Never compiled — scanned by tests/tools/wlan_lint_test.py.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

long bad_steady() {
  auto t = std::chrono::steady_clock::now();  // fires: steady_clock
  return t.time_since_epoch().count();
}

long bad_system() {
  auto t = std::chrono::system_clock::now();  // fires: system_clock
  return t.time_since_epoch().count();
}

unsigned bad_random_device() {
  std::random_device rd;  // fires: random_device
  return rd();
}

int bad_rand() {
  srand(42);       // fires: srand
  return rand();   // fires: rand
}

long bad_time() {
  return time(nullptr);  // fires: time(
}

}  // namespace fixture

// Fixture: must produce zero unordered-iteration findings.
#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

void lookups_only() {
  std::unordered_map<int, double> table;
  table[7] = 1.0;
  // Point lookups never depend on iteration order.
  auto it = table.find(7);
  if (it != table.end()) std::printf("%f\n", it->second);
}

void ordered_map_is_fine() {
  std::map<int, double> sorted_table;
  sorted_table[1] = 2.0;
  for (const auto& [k, v] : sorted_table) std::printf("%d %f\n", k, v);
}

void vector_begin_is_fine(const std::vector<int>& xs) {
  std::printf("%d\n", *std::min_element(xs.begin(), xs.end()));
}

void annotated_order_independent() {
  std::unordered_map<int, long> counts;
  counts[3] = 4;
  long total = 0;
  // wlan-lint: allow(unordered-iteration) — commutative sum; visit order
  // cannot change the total
  for (const auto& [k, v] : counts) total += v;
  std::printf("%ld\n", total);
}

}  // namespace fixture

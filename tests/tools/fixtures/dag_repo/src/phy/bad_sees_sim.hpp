// Fixture: phy must not include sim — this edge must fire layer-dag.
#pragma once

#include "sim/channel.hpp"   // fires: phy -> sim is not in the DAG
#include "obs/metrics.hpp"   // ok: phy -> obs
#include "util/rng.hpp"      // ok: phy -> util (transitive closure)

// Fixture: the repo's invariant 1 — core must not depend on sim; the
// analyzers consume trace::Trace only.  This edge must fire layer-dag.
#include "core/analyzer.hpp"  // ok: core -> core
#include "sim/network.hpp"    // fires: core -> sim is not in the DAG
#include "trace/record.hpp"   // ok: core -> trace

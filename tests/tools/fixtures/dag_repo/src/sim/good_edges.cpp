// Fixture: all edges legal (sim sees trace/mac/rate/phy/obs/util);
// must produce zero layer-dag findings.
#include "sim/event_queue.hpp"
#include "mac/frame.hpp"
#include "rate/rate_controller.hpp"
#include "phy/propagation.hpp"
#include "obs/metrics.hpp"
#include "trace/record.hpp"
#include "util/rng.hpp"
#include <vector>

// Fixture: util must not include obs — this edge must fire layer-dag.
#pragma once

#include "obs/metrics.hpp"   // fires: util -> obs is not in the DAG
#include "util/rng.hpp"      // ok: util -> util

// Fixture: must produce zero rng-seed findings.
#include <cstdint>

#include "util/rng.hpp"

namespace fixture {

struct Config {
  std::uint64_t seed = 0;
};

double good_mix_seed(const Config& cfg) {
  wlan::util::Rng rng(wlan::util::mix_seed(cfg.seed, 7));
  return rng.uniform01();
}

double good_config_seed(const Config& cfg) {
  wlan::util::Rng rng(cfg.seed ^ 0xCE11ULL);  // config-derived: ok
  return rng.uniform01();
}

struct GoodMember {
  explicit GoodMember(std::uint64_t stream_seed) : rng_(stream_seed) {}
  wlan::util::Rng rng_;
};

double suppressed_literal() {
  // wlan-lint: allow(rng-seed) — fixture for the suppression path
  wlan::util::Rng rng(1);
  return rng.uniform01();
}

}  // namespace fixture

// Conformance harness: every policy in the PolicyRegistry, whatever its
// internals, must emit bounded retry chains and replay deterministically
// from (config, stream_seed).  New policies get these guarantees checked
// just by registering.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "rate/policy_registry.hpp"

namespace wlan::rate {
namespace {

std::unique_ptr<RateController> make(const std::string& key,
                                     std::uint64_t stream_seed) {
  ControllerConfig cfg;
  cfg.policy = key;
  return PolicyRegistry::instance().make(cfg, stream_seed);
}

// Deterministic synthetic driver: advancing clock, periodic SNR hints, and
// a fixed success pattern fed back at the plan's first-attempt rate.
TxContext context_at(int step) {
  TxContext ctx;
  ctx.payload_bytes = 1024;
  ctx.now = Microseconds{step * 7'000};
  if (step % 7 == 0) ctx.snr_db = 5.0 + step % 30;
  return ctx;
}

bool plans_equal(const TxPlan& a, const TxPlan& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.stage(i).rate != b.stage(i).rate ||
        a.stage(i).attempts != b.stage(i).attempts) {
      return false;
    }
  }
  return true;
}

TEST(ConformanceTest, EveryPolicyEmitsBoundedPlans) {
  for (const std::string& key : PolicyRegistry::instance().keys()) {
    const auto ctl = make(key, 42);
    for (int i = 0; i < 64; ++i) {
      const TxContext ctx = context_at(i);
      ctl->on_tick(ctx.now);
      const TxPlan p = ctl->plan(ctx);
      ASSERT_FALSE(p.empty()) << key;
      ASSERT_LE(p.size(), TxPlan::kMaxStages) << key;
      std::uint32_t total = 0;
      for (std::size_t s = 0; s < p.size(); ++s) {
        ASSERT_GE(p.stage(s).attempts, 1) << key << " stage " << s;
        total += p.stage(s).attempts;
      }
      EXPECT_EQ(p.total_attempts(), total) << key;
      // Past-end attempts clamp into the final stage, never out of range.
      EXPECT_EQ(p.rate_for_attempt(total + 5), p.stage(p.size() - 1).rate)
          << key;

      TxFeedback fb;
      fb.rate = p.rate_for_attempt(0);
      fb.success = (i % 3) != 0;
      fb.payload_bytes = ctx.payload_bytes;
      fb.now = ctx.now;
      ctl->on_tx_outcome(fb);
    }
  }
}

TEST(ConformanceTest, IdenticalSeedsReplayIdentically) {
  for (const std::string& key : PolicyRegistry::instance().keys()) {
    const auto a = make(key, 9001);
    const auto b = make(key, 9001);
    for (int i = 0; i < 300; ++i) {
      const TxContext ctx = context_at(i);
      a->on_tick(ctx.now);
      b->on_tick(ctx.now);
      const TxPlan pa = a->plan(ctx);
      const TxPlan pb = b->plan(ctx);
      ASSERT_TRUE(plans_equal(pa, pb)) << key << " step " << i;

      TxFeedback fb;
      fb.rate = pa.rate_for_attempt(0);
      fb.success = (i % 5) != 0;
      fb.payload_bytes = ctx.payload_bytes;
      fb.now = ctx.now;
      a->on_tx_outcome(fb);
      b->on_tx_outcome(fb);
    }
  }
}

}  // namespace
}  // namespace wlan::rate

#include "rate/rate_controller.hpp"

#include <gtest/gtest.h>

#include "rate/fixed.hpp"

namespace wlan::rate {
namespace {

TEST(FactoryTest, BuildsEveryPolicy) {
  for (Policy p : {Policy::kArf, Policy::kAarf, Policy::kSnrThreshold,
                   Policy::kFixed1, Policy::kFixed11}) {
    ControllerConfig cfg;
    cfg.policy = p;
    const auto ctl = make_controller(cfg);
    ASSERT_NE(ctl, nullptr);
    EXPECT_EQ(ctl->name(), policy_name(p).substr(0, ctl->name().size()));
  }
}

TEST(FactoryTest, PolicyNamesDistinct) {
  EXPECT_EQ(policy_name(Policy::kArf), "ARF");
  EXPECT_EQ(policy_name(Policy::kAarf), "AARF");
  EXPECT_EQ(policy_name(Policy::kSnrThreshold), "SNR");
  EXPECT_EQ(policy_name(Policy::kFixed1), "FIXED-1");
  EXPECT_EQ(policy_name(Policy::kFixed11), "FIXED-11");
}

TEST(FixedTest, NeverMoves) {
  Fixed fixed(phy::Rate::kR5_5);
  for (int i = 0; i < 5; ++i) fixed.on_failure();
  EXPECT_EQ(fixed.rate_for_next(0.0), phy::Rate::kR5_5);
  for (int i = 0; i < 50; ++i) fixed.on_success();
  EXPECT_EQ(fixed.rate_for_next(40.0), phy::Rate::kR5_5);
}

TEST(FactoryTest, FixedPoliciesPinTheConfiguredRate) {
  ControllerConfig cfg;
  cfg.policy = Policy::kFixed1;
  EXPECT_EQ(make_controller(cfg)->rate_for_next(30.0), phy::Rate::kR1);
  cfg.policy = Policy::kFixed11;
  EXPECT_EQ(make_controller(cfg)->rate_for_next(-10.0), phy::Rate::kR11);
}

TEST(FactoryTest, ArfThresholdsRespected) {
  ControllerConfig cfg;
  cfg.policy = Policy::kArf;
  cfg.up_threshold = 3;
  cfg.down_threshold = 1;
  const auto ctl = make_controller(cfg);
  ctl->on_failure();  // single failure drops with down_threshold = 1
  EXPECT_EQ(ctl->rate_for_next(0.0), phy::Rate::kR5_5);
  for (int i = 0; i < 3; ++i) ctl->on_success();
  EXPECT_EQ(ctl->rate_for_next(0.0), phy::Rate::kR11);
}

}  // namespace
}  // namespace wlan::rate

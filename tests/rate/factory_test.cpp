// PolicyRegistry construction paths and the TxPlan retry-chain mechanics.
#include "rate/policy_registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "feedback.hpp"
#include "rate/fixed.hpp"

namespace wlan::rate {
namespace {

using testing::next_rate;

std::unique_ptr<RateController> make(const std::string& policy) {
  ControllerConfig cfg;
  cfg.policy = policy;
  return PolicyRegistry::instance().make(cfg, /*stream_seed=*/1);
}

TEST(PolicyRegistryTest, BuildsEveryPolicy) {
  const auto keys = PolicyRegistry::instance().keys();
  ASSERT_EQ(keys.size(), 6u);  // arf aarf snr fixed1 fixed11 minstrel
  for (const std::string& key : keys) {
    const auto ctl = make(key);
    ASSERT_NE(ctl, nullptr) << key;
    EXPECT_FALSE(ctl->name().empty()) << key;
  }
}

TEST(PolicyRegistryTest, DisplayNamesDistinct) {
  const auto& reg = PolicyRegistry::instance();
  EXPECT_EQ(reg.display_name("arf"), "ARF");
  EXPECT_EQ(reg.display_name("aarf"), "AARF");
  EXPECT_EQ(reg.display_name("snr"), "SNR");
  EXPECT_EQ(reg.display_name("fixed1"), "FIXED-1");
  EXPECT_EQ(reg.display_name("fixed11"), "FIXED-11");
  EXPECT_EQ(reg.display_name("minstrel"), "MINSTREL");
}

TEST(PolicyRegistryTest, UnknownAndDuplicateThrow) {
  ControllerConfig cfg;
  cfg.policy = "carrier-pigeon";
  EXPECT_THROW((void)PolicyRegistry::instance().make(cfg, 1),
               std::invalid_argument);
  EXPECT_THROW((void)PolicyRegistry::instance().display_name("nope"),
               std::invalid_argument);
  EXPECT_THROW(PolicyRegistry::instance().add(
                   "arf", "ARF-AGAIN",
                   [](const ControllerConfig&, std::uint64_t) {
                     return std::unique_ptr<RateController>{};
                   }),
               std::invalid_argument);
}

TEST(FixedTest, NeverMoves) {
  Fixed fixed(phy::Rate::kR5_5);
  testing::fail(fixed, 5);
  EXPECT_EQ(next_rate(fixed), phy::Rate::kR5_5);
  testing::succeed(fixed, 50);
  EXPECT_EQ(next_rate(fixed, 40.0), phy::Rate::kR5_5);
}

TEST(PolicyRegistryTest, FixedPoliciesPinTheConfiguredRate) {
  EXPECT_EQ(next_rate(*make("fixed1"), 30.0), phy::Rate::kR1);
  EXPECT_EQ(next_rate(*make("fixed11"), -10.0), phy::Rate::kR11);
}

TEST(PolicyRegistryTest, ArfThresholdsRespected) {
  ControllerConfig cfg;
  cfg.policy = "arf";
  cfg.up_threshold = 3;
  cfg.down_threshold = 1;
  const auto ctl = PolicyRegistry::instance().make(cfg, 1);
  testing::fail(*ctl);  // single failure drops with down_threshold = 1
  EXPECT_EQ(next_rate(*ctl), phy::Rate::kR5_5);
  testing::succeed(*ctl, 3);
  EXPECT_EQ(next_rate(*ctl), phy::Rate::kR11);
}

// --- TxPlan mechanics ------------------------------------------------------

TEST(TxPlanTest, SingleStagePlan) {
  const TxPlan p = TxPlan::single(phy::Rate::kR5_5);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.total_attempts(), 1u);
  EXPECT_EQ(p.rate_for_attempt(0), phy::Rate::kR5_5);
}

TEST(TxPlanTest, AttemptsWalkTheStages) {
  TxPlan p;
  p.push(phy::Rate::kR11, 2);
  p.push(phy::Rate::kR5_5, 1);
  p.push(phy::Rate::kR1, 3);
  EXPECT_EQ(p.total_attempts(), 6u);
  EXPECT_EQ(p.rate_for_attempt(0), phy::Rate::kR11);
  EXPECT_EQ(p.rate_for_attempt(1), phy::Rate::kR11);
  EXPECT_EQ(p.rate_for_attempt(2), phy::Rate::kR5_5);
  EXPECT_EQ(p.rate_for_attempt(3), phy::Rate::kR1);
  EXPECT_EQ(p.rate_for_attempt(5), phy::Rate::kR1);
}

TEST(TxPlanTest, PastEndClampsIntoFinalStage) {
  TxPlan p;
  p.push(phy::Rate::kR11, 1);
  p.push(phy::Rate::kR2, 1);
  EXPECT_EQ(p.rate_for_attempt(17), phy::Rate::kR2);
}

TEST(TxPlanTest, EmptyPlanFallsBackToBaseRate) {
  const TxPlan p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.rate_for_attempt(0), phy::Rate::kR1);
}

TEST(TxPlanTest, PushBeyondCapacityAndZeroAttemptsIgnored) {
  TxPlan p;
  for (std::size_t i = 0; i < TxPlan::kMaxStages + 3; ++i) {
    p.push(phy::Rate::kR11, 1);
  }
  EXPECT_EQ(p.size(), TxPlan::kMaxStages);
  TxPlan q;
  q.push(phy::Rate::kR11, 0);  // no-op
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace wlan::rate

// Shared helpers for driving RateControllers through the retry-chain API in
// unit tests: ask for the next first-attempt rate, report ack/loss outcomes.
#pragma once

#include "rate/rate_controller.hpp"

namespace wlan::rate::testing {

/// First-stage rate of a fresh plan (what the old per-attempt API called
/// rate_for_next).
inline phy::Rate next_rate(RateController& c,
                           std::optional<double> snr = std::nullopt) {
  TxContext ctx;
  ctx.snr_db = snr;
  return c.plan(ctx).rate_for_attempt(0);
}

inline void outcome(RateController& c, bool success,
                    phy::Rate rate = phy::Rate::kR11) {
  TxFeedback fb;
  fb.rate = rate;
  fb.success = success;
  c.on_tx_outcome(fb);
}

inline void succeed(RateController& c, int n = 1) {
  for (int i = 0; i < n; ++i) outcome(c, true);
}

inline void fail(RateController& c, int n = 1) {
  for (int i = 0; i < n; ++i) outcome(c, false);
}

}  // namespace wlan::rate::testing

// MinstrelLite: throughput-ordered retry chains, pinned EWMA arithmetic,
// and the deterministic probe schedule.
#include "rate/minstrel_lite.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "feedback.hpp"

namespace wlan::rate {
namespace {

using testing::outcome;

// The probe stage, when present, prepends: the throughput-ordered core
// (best, runner-up, 1 Mbps anchor) is always the last three stages.
TxStage tail_stage(const TxPlan& p, std::size_t i_from_end) {
  return p.stage(p.size() - 1 - i_from_end);
}

bool plans_equal(const TxPlan& a, const TxPlan& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.stage(i).rate != b.stage(i).rate ||
        a.stage(i).attempts != b.stage(i).attempts) {
      return false;
    }
  }
  return true;
}

TEST(MinstrelLiteTest, FreshPlanOrdersByThroughput) {
  ControllerConfig cfg;
  MinstrelLite c(cfg, /*stream_seed=*/7);
  const TxPlan p = c.plan({});
  ASSERT_GE(p.size(), 3u);
  ASSERT_LE(p.size(), 4u);
  // All EWMAs start at the optimistic 1.0, so throughput order is airtime
  // order: 11 Mbps best, 5.5 runner-up, 1 Mbps anchor.
  EXPECT_EQ(tail_stage(p, 2).rate, phy::Rate::kR11);
  EXPECT_EQ(tail_stage(p, 1).rate, phy::Rate::kR5_5);
  EXPECT_EQ(tail_stage(p, 0).rate, phy::Rate::kR1);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(tail_stage(p, i).attempts, cfg.minstrel_stage_attempts);
  }
}

TEST(MinstrelLiteTest, ProbeStageIsSingleAttemptNonBest) {
  ControllerConfig cfg;
  cfg.minstrel_probe_interval = 1;  // probe gap drawn from {1, 2}
  MinstrelLite c(cfg, 3);
  int probes = 0;
  for (int i = 0; i < 20; ++i) {
    const TxPlan p = c.plan({});
    if (p.size() == 4) {
      ++probes;
      EXPECT_EQ(p.stage(0).attempts, 1);
      EXPECT_NE(p.stage(0).rate, tail_stage(p, 2).rate);
    }
  }
  EXPECT_GE(probes, 5);  // gap <= 2 frames, so at least every other plan
}

TEST(MinstrelLiteTest, SameSeedReplaysIdentically) {
  ControllerConfig cfg;
  MinstrelLite a(cfg, 11);
  MinstrelLite b(cfg, 11);
  for (int i = 0; i < 300; ++i) {
    const Microseconds now{i * 7'000};
    a.on_tick(now);
    b.on_tick(now);
    TxContext ctx;
    ctx.payload_bytes = 1024;
    ctx.now = now;
    const TxPlan pa = a.plan(ctx);
    const TxPlan pb = b.plan(ctx);
    ASSERT_TRUE(plans_equal(pa, pb)) << "step " << i;
    const bool success = (i % 3) != 0;
    outcome(a, success, pa.rate_for_attempt(0));
    outcome(b, success, pb.rate_for_attempt(0));
  }
}

TEST(MinstrelLiteTest, DifferentSeedsShiftTheProbeSchedule) {
  ControllerConfig cfg;
  MinstrelLite a(cfg, 1);
  MinstrelLite b(cfg, 2);
  std::vector<std::size_t> sizes_a, sizes_b;
  for (int i = 0; i < 400; ++i) {
    sizes_a.push_back(a.plan({}).size());
    sizes_b.push_back(b.plan({}).size());
  }
  EXPECT_NE(sizes_a, sizes_b);  // probe frames land on different plans
}

TEST(MinstrelLiteTest, EwmaUpdateIsPinned) {
  ControllerConfig cfg;
  MinstrelLite c(cfg, 7);
  c.on_tick(Microseconds{0});  // arms the first window at [0, window)
  outcome(c, true, phy::Rate::kR11);
  outcome(c, false, phy::Rate::kR11);
  EXPECT_EQ(c.window_attempts(phy::Rate::kR11), 2u);

  c.on_tick(cfg.minstrel_window);  // exactly one window rolls
  // alpha 0.25, window success ratio 0.5: 0.25 * 0.5 + 0.75 * 1.0.
  EXPECT_DOUBLE_EQ(c.ewma(phy::Rate::kR11), 0.875);
  EXPECT_EQ(c.window_attempts(phy::Rate::kR11), 0u);
  // Rates with no traffic this window keep their estimate.
  EXPECT_DOUBLE_EQ(c.ewma(phy::Rate::kR5_5), 1.0);
}

TEST(MinstrelLiteTest, IdleWindowsDoNotDecay) {
  ControllerConfig cfg;
  MinstrelLite c(cfg, 7);
  c.on_tick(Microseconds{0});
  outcome(c, false, phy::Rate::kR11);
  // Jump five windows ahead: the first roll applies the all-fail window,
  // the idle ones leave the estimate alone.
  c.on_tick(Microseconds{5 * cfg.minstrel_window.count()});
  EXPECT_DOUBLE_EQ(c.ewma(phy::Rate::kR11), 0.75);
}

TEST(MinstrelLiteTest, SustainedLossDemotesTheBestRate) {
  ControllerConfig cfg;
  MinstrelLite c(cfg, 7);
  c.on_tick(Microseconds{0});
  for (int w = 1; w <= 3; ++w) {
    outcome(c, false, phy::Rate::kR11);
    outcome(c, false, phy::Rate::kR11);
    c.on_tick(Microseconds{w * cfg.minstrel_window.count()});
  }
  EXPECT_DOUBLE_EQ(c.ewma(phy::Rate::kR11), 0.421875);  // 0.75^3
  // 11 Mbps at ~42% expected success scores below a clean 5.5 Mbps.
  const TxPlan p = c.plan({});
  EXPECT_EQ(tail_stage(p, 2).rate, phy::Rate::kR5_5);
  EXPECT_EQ(tail_stage(p, 0).rate, phy::Rate::kR1);
}

TEST(MinstrelLiteTest, Name) {
  ControllerConfig cfg;
  MinstrelLite c(cfg, 7);
  EXPECT_EQ(c.name(), "MINSTREL");
}

}  // namespace
}  // namespace wlan::rate

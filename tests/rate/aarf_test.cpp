#include "rate/aarf.hpp"

#include <gtest/gtest.h>

namespace wlan::rate {
namespace {

// Drives the controller to 5.5 Mbps from the initial 11.
void drop_one_rate(Aarf& aarf) {
  aarf.on_failure();
  aarf.on_failure();
}

TEST(AarfTest, BehavesLikeArfInitially) {
  Aarf aarf(10, 2);
  EXPECT_EQ(aarf.rate_for_next(0.0), phy::Rate::kR11);
  drop_one_rate(aarf);
  EXPECT_EQ(aarf.rate_for_next(0.0), phy::Rate::kR5_5);
  for (int i = 0; i < 10; ++i) aarf.on_success();
  EXPECT_EQ(aarf.rate_for_next(0.0), phy::Rate::kR11);
}

TEST(AarfTest, FailedProbeDoublesUpThreshold) {
  Aarf aarf(10, 2);
  drop_one_rate(aarf);  // at 5.5

  // Probe up, fail -> back to 5.5, threshold now 20.
  for (int i = 0; i < 10; ++i) aarf.on_success();
  ASSERT_EQ(aarf.rate_for_next(0.0), phy::Rate::kR11);
  aarf.on_failure();
  ASSERT_EQ(aarf.rate_for_next(0.0), phy::Rate::kR5_5);

  // 10 successes no longer trigger a probe...
  for (int i = 0; i < 10; ++i) aarf.on_success();
  EXPECT_EQ(aarf.rate_for_next(0.0), phy::Rate::kR5_5);
  // ...but 20 do.
  for (int i = 0; i < 10; ++i) aarf.on_success();
  EXPECT_EQ(aarf.rate_for_next(0.0), phy::Rate::kR11);
}

TEST(AarfTest, ThresholdCapped) {
  Aarf aarf(10, 2);
  drop_one_rate(aarf);
  // Fail many probes: threshold doubles 10->20->40->50 (cap).
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) aarf.on_success();
    if (aarf.rate_for_next(0.0) == phy::Rate::kR11) aarf.on_failure();
  }
  // Still recoverable within the cap.
  for (int i = 0; i < 50; ++i) aarf.on_success();
  EXPECT_EQ(aarf.rate_for_next(0.0), phy::Rate::kR11);
}

TEST(AarfTest, RegularDropResetsThreshold) {
  Aarf aarf(10, 2);
  drop_one_rate(aarf);  // 5.5
  for (int i = 0; i < 10; ++i) aarf.on_success();
  aarf.on_failure();  // failed probe -> threshold 20, back at 5.5
  drop_one_rate(aarf);  // regular drop to 2: threshold back to base
  ASSERT_EQ(aarf.rate_for_next(0.0), phy::Rate::kR2);
  for (int i = 0; i < 10; ++i) aarf.on_success();
  EXPECT_EQ(aarf.rate_for_next(0.0), phy::Rate::kR5_5);
}

TEST(AarfTest, Name) {
  Aarf aarf(10, 2);
  EXPECT_EQ(aarf.name(), "AARF");
}

}  // namespace
}  // namespace wlan::rate

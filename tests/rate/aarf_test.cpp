#include "rate/aarf.hpp"

#include <gtest/gtest.h>

#include "feedback.hpp"

namespace wlan::rate {
namespace {

using testing::fail;
using testing::next_rate;
using testing::succeed;

// Drives the controller to 5.5 Mbps from the initial 11.
void drop_one_rate(Aarf& aarf) { fail(aarf, 2); }

TEST(AarfTest, BehavesLikeArfInitially) {
  Aarf aarf(10, 2);
  EXPECT_EQ(next_rate(aarf), phy::Rate::kR11);
  drop_one_rate(aarf);
  EXPECT_EQ(next_rate(aarf), phy::Rate::kR5_5);
  succeed(aarf, 10);
  EXPECT_EQ(next_rate(aarf), phy::Rate::kR11);
}

TEST(AarfTest, FailedProbeDoublesUpThreshold) {
  Aarf aarf(10, 2);
  drop_one_rate(aarf);  // at 5.5

  // Probe up, fail -> back to 5.5, threshold now 20.
  succeed(aarf, 10);
  ASSERT_EQ(next_rate(aarf), phy::Rate::kR11);
  fail(aarf);
  ASSERT_EQ(next_rate(aarf), phy::Rate::kR5_5);

  // 10 successes no longer trigger a probe...
  succeed(aarf, 10);
  EXPECT_EQ(next_rate(aarf), phy::Rate::kR5_5);
  // ...but 20 do.
  succeed(aarf, 10);
  EXPECT_EQ(next_rate(aarf), phy::Rate::kR11);
}

TEST(AarfTest, ThresholdCapped) {
  Aarf aarf(10, 2);
  drop_one_rate(aarf);
  // Fail many probes: threshold doubles 10->20->40->50 (cap).
  for (int round = 0; round < 5; ++round) {
    succeed(aarf, 50);
    if (next_rate(aarf) == phy::Rate::kR11) fail(aarf);
  }
  // Still recoverable within the cap.
  succeed(aarf, 50);
  EXPECT_EQ(next_rate(aarf), phy::Rate::kR11);
}

TEST(AarfTest, RegularDropResetsThreshold) {
  Aarf aarf(10, 2);
  drop_one_rate(aarf);  // 5.5
  succeed(aarf, 10);
  fail(aarf);  // failed probe -> threshold 20, back at 5.5
  drop_one_rate(aarf);  // regular drop to 2: threshold back to base
  ASSERT_EQ(next_rate(aarf), phy::Rate::kR2);
  succeed(aarf, 10);
  EXPECT_EQ(next_rate(aarf), phy::Rate::kR5_5);
}

TEST(AarfTest, Name) {
  Aarf aarf(10, 2);
  EXPECT_EQ(aarf.name(), "AARF");
}

}  // namespace
}  // namespace wlan::rate

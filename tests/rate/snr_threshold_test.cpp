#include "rate/snr_threshold.hpp"

#include <gtest/gtest.h>

#include "feedback.hpp"
#include "phy/error_model.hpp"

namespace wlan::rate {
namespace {

using testing::fail;
using testing::next_rate;

TEST(SnrThresholdTest, HighSnrSelectsEleven) {
  SnrThreshold ctl(0.9, 1024);
  EXPECT_EQ(next_rate(ctl, 30.0), phy::Rate::kR11);
}

TEST(SnrThresholdTest, VeryLowSnrFallsToOne) {
  SnrThreshold ctl(0.9, 1024);
  EXPECT_EQ(next_rate(ctl, -5.0), phy::Rate::kR1);
}

TEST(SnrThresholdTest, ThresholdsMatchErrorModel) {
  SnrThreshold ctl(0.9, 1024);
  for (phy::Rate r : phy::kAllRates) {
    EXPECT_NEAR(ctl.threshold_db(r), phy::required_snr_db(r, 1024, 0.9), 1e-9);
  }
}

TEST(SnrThresholdTest, SelectionIsHighestFeasible) {
  SnrThreshold ctl(0.9, 1024);
  // Just above the 5.5 threshold but below the 11 threshold.
  const double snr =
      (ctl.threshold_db(phy::Rate::kR5_5) + ctl.threshold_db(phy::Rate::kR11)) / 2;
  EXPECT_EQ(next_rate(ctl, snr), phy::Rate::kR5_5);
}

TEST(SnrThresholdTest, OptimisticBeforeFirstMeasurement) {
  // A fresh controller with no SNR in the context starts from its
  // optimistic prior, not from the floor.
  SnrThreshold ctl(0.9, 1024);
  EXPECT_EQ(next_rate(ctl), phy::Rate::kR11);
}

TEST(SnrThresholdTest, RemembersLastKnownSnr) {
  SnrThreshold ctl(0.9, 1024);
  EXPECT_EQ(next_rate(ctl, -5.0), phy::Rate::kR1);
  // An absent hint (peer SNR unknown) must reuse the remembered SNR, not
  // reset to the optimistic prior.
  EXPECT_EQ(next_rate(ctl), phy::Rate::kR1);
}

TEST(SnrThresholdTest, IgnoresLossFeedback) {
  SnrThreshold ctl(0.9, 1024);
  (void)next_rate(ctl, 30.0);
  fail(ctl, 10);
  // Still 11: collisions do not drag an SNR-based policy down (the paper's
  // recommended behaviour).
  EXPECT_EQ(next_rate(ctl, 30.0), phy::Rate::kR11);
}

TEST(SnrThresholdTest, TighterTargetNeedsMoreSnr) {
  SnrThreshold loose(0.5, 1024);
  SnrThreshold tight(0.99, 1024);
  for (phy::Rate r : phy::kAllRates) {
    EXPECT_LT(loose.threshold_db(r), tight.threshold_db(r));
  }
}

TEST(SnrThresholdTest, Name) {
  SnrThreshold ctl(0.9, 1024);
  EXPECT_EQ(ctl.name(), "SNR");
}

}  // namespace
}  // namespace wlan::rate

#include "rate/snr_threshold.hpp"

#include <gtest/gtest.h>

#include "phy/error_model.hpp"

namespace wlan::rate {
namespace {

TEST(SnrThresholdTest, HighSnrSelectsEleven) {
  SnrThreshold ctl(0.9, 1024);
  EXPECT_EQ(ctl.rate_for_next(30.0), phy::Rate::kR11);
}

TEST(SnrThresholdTest, VeryLowSnrFallsToOne) {
  SnrThreshold ctl(0.9, 1024);
  EXPECT_EQ(ctl.rate_for_next(-5.0), phy::Rate::kR1);
}

TEST(SnrThresholdTest, ThresholdsMatchErrorModel) {
  SnrThreshold ctl(0.9, 1024);
  for (phy::Rate r : phy::kAllRates) {
    EXPECT_NEAR(ctl.threshold_db(r), phy::required_snr_db(r, 1024, 0.9), 1e-9);
  }
}

TEST(SnrThresholdTest, SelectionIsHighestFeasible) {
  SnrThreshold ctl(0.9, 1024);
  // Just above the 5.5 threshold but below the 11 threshold.
  const double snr =
      (ctl.threshold_db(phy::Rate::kR5_5) + ctl.threshold_db(phy::Rate::kR11)) / 2;
  EXPECT_EQ(ctl.rate_for_next(snr), phy::Rate::kR5_5);
}

TEST(SnrThresholdTest, RemembersLastKnownSnr) {
  SnrThreshold ctl(0.9, 1024);
  EXPECT_EQ(ctl.rate_for_next(-5.0), phy::Rate::kR1);
  // Sentinel "unknown" hint must reuse the remembered SNR, not reset.
  EXPECT_EQ(ctl.rate_for_next(-200.0), phy::Rate::kR1);
}

TEST(SnrThresholdTest, IgnoresLossFeedback) {
  SnrThreshold ctl(0.9, 1024);
  ctl.rate_for_next(30.0);
  for (int i = 0; i < 10; ++i) ctl.on_failure();
  // Still 11: collisions do not drag an SNR-based policy down (the paper's
  // recommended behaviour).
  EXPECT_EQ(ctl.rate_for_next(30.0), phy::Rate::kR11);
}

TEST(SnrThresholdTest, TighterTargetNeedsMoreSnr) {
  SnrThreshold loose(0.5, 1024);
  SnrThreshold tight(0.99, 1024);
  for (phy::Rate r : phy::kAllRates) {
    EXPECT_LT(loose.threshold_db(r), tight.threshold_db(r));
  }
}

TEST(SnrThresholdTest, Name) {
  SnrThreshold ctl(0.9, 1024);
  EXPECT_EQ(ctl.name(), "SNR");
}

}  // namespace
}  // namespace wlan::rate

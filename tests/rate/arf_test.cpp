#include "rate/arf.hpp"

#include <gtest/gtest.h>

namespace wlan::rate {
namespace {

TEST(ArfTest, StartsAtTopRate) {
  Arf arf(10, 2);
  EXPECT_EQ(arf.rate_for_next(0.0), phy::Rate::kR11);
}

TEST(ArfTest, TwoConsecutiveFailuresDropRate) {
  Arf arf(10, 2);
  arf.on_failure();
  EXPECT_EQ(arf.rate_for_next(0.0), phy::Rate::kR11);  // one is not enough
  arf.on_failure();
  EXPECT_EQ(arf.rate_for_next(0.0), phy::Rate::kR5_5);
}

TEST(ArfTest, SuccessResetsFailureCount) {
  Arf arf(10, 2);
  arf.on_failure();
  arf.on_success();
  arf.on_failure();
  EXPECT_EQ(arf.rate_for_next(0.0), phy::Rate::kR11);
}

TEST(ArfTest, SuccessTrainProbesUp) {
  Arf arf(10, 2);
  // Get down to 5.5 first.
  arf.on_failure();
  arf.on_failure();
  ASSERT_EQ(arf.rate_for_next(0.0), phy::Rate::kR5_5);
  for (int i = 0; i < 10; ++i) arf.on_success();
  EXPECT_EQ(arf.rate_for_next(0.0), phy::Rate::kR11);
}

TEST(ArfTest, FailedProbeFallsStraightBack) {
  Arf arf(10, 2);
  arf.on_failure();
  arf.on_failure();  // at 5.5
  for (int i = 0; i < 10; ++i) arf.on_success();  // probe up to 11
  ASSERT_EQ(arf.rate_for_next(0.0), phy::Rate::kR11);
  arf.on_failure();  // probe fails: single failure is enough
  EXPECT_EQ(arf.rate_for_next(0.0), phy::Rate::kR5_5);
}

TEST(ArfTest, CannotDropBelowOne) {
  Arf arf(10, 2);
  for (int i = 0; i < 20; ++i) arf.on_failure();
  EXPECT_EQ(arf.rate_for_next(0.0), phy::Rate::kR1);
}

TEST(ArfTest, CannotProbeAboveEleven) {
  Arf arf(2, 2);
  for (int i = 0; i < 50; ++i) arf.on_success();
  EXPECT_EQ(arf.rate_for_next(0.0), phy::Rate::kR11);
}

TEST(ArfTest, DescendsWholeLadderUnderSustainedLoss) {
  Arf arf(10, 2);
  arf.on_failure();
  arf.on_failure();
  EXPECT_EQ(arf.rate_for_next(0.0), phy::Rate::kR5_5);
  arf.on_failure();
  arf.on_failure();
  EXPECT_EQ(arf.rate_for_next(0.0), phy::Rate::kR2);
  arf.on_failure();
  arf.on_failure();
  EXPECT_EQ(arf.rate_for_next(0.0), phy::Rate::kR1);
}

TEST(ArfTest, IgnoresSnrHint) {
  // ARF is loss-based: the paper's point is precisely that it cannot tell
  // collisions from weak signal.
  Arf arf(10, 2);
  EXPECT_EQ(arf.rate_for_next(-50.0), phy::Rate::kR11);
  EXPECT_EQ(arf.rate_for_next(50.0), phy::Rate::kR11);
}

TEST(ArfTest, Name) {
  Arf arf(10, 2);
  EXPECT_EQ(arf.name(), "ARF");
}

}  // namespace
}  // namespace wlan::rate

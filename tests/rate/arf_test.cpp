#include "rate/arf.hpp"

#include <gtest/gtest.h>

#include "feedback.hpp"

namespace wlan::rate {
namespace {

using testing::fail;
using testing::next_rate;
using testing::succeed;

TEST(ArfTest, StartsAtTopRate) {
  Arf arf(10, 2);
  EXPECT_EQ(next_rate(arf), phy::Rate::kR11);
}

TEST(ArfTest, TwoConsecutiveFailuresDropRate) {
  Arf arf(10, 2);
  fail(arf);
  EXPECT_EQ(next_rate(arf), phy::Rate::kR11);  // one is not enough
  fail(arf);
  EXPECT_EQ(next_rate(arf), phy::Rate::kR5_5);
}

TEST(ArfTest, SuccessResetsFailureCount) {
  Arf arf(10, 2);
  fail(arf);
  succeed(arf);
  fail(arf);
  EXPECT_EQ(next_rate(arf), phy::Rate::kR11);
}

TEST(ArfTest, SuccessTrainProbesUp) {
  Arf arf(10, 2);
  // Get down to 5.5 first.
  fail(arf, 2);
  ASSERT_EQ(next_rate(arf), phy::Rate::kR5_5);
  succeed(arf, 10);
  EXPECT_EQ(next_rate(arf), phy::Rate::kR11);
}

TEST(ArfTest, FailedProbeFallsStraightBack) {
  Arf arf(10, 2);
  fail(arf, 2);  // at 5.5
  succeed(arf, 10);  // probe up to 11
  ASSERT_EQ(next_rate(arf), phy::Rate::kR11);
  fail(arf);  // probe fails: single failure is enough
  EXPECT_EQ(next_rate(arf), phy::Rate::kR5_5);
}

TEST(ArfTest, CannotDropBelowOne) {
  Arf arf(10, 2);
  fail(arf, 20);
  EXPECT_EQ(next_rate(arf), phy::Rate::kR1);
}

TEST(ArfTest, CannotProbeAboveEleven) {
  Arf arf(2, 2);
  succeed(arf, 50);
  EXPECT_EQ(next_rate(arf), phy::Rate::kR11);
}

TEST(ArfTest, DescendsWholeLadderUnderSustainedLoss) {
  Arf arf(10, 2);
  fail(arf, 2);
  EXPECT_EQ(next_rate(arf), phy::Rate::kR5_5);
  fail(arf, 2);
  EXPECT_EQ(next_rate(arf), phy::Rate::kR2);
  fail(arf, 2);
  EXPECT_EQ(next_rate(arf), phy::Rate::kR1);
}

TEST(ArfTest, IgnoresSnrHint) {
  // ARF is loss-based: the paper's point is precisely that it cannot tell
  // collisions from weak signal.
  Arf arf(10, 2);
  EXPECT_EQ(next_rate(arf, -50.0), phy::Rate::kR11);
  EXPECT_EQ(next_rate(arf, 50.0), phy::Rate::kR11);
}

TEST(ArfTest, PlansSingleAttemptStages) {
  // Legacy cadence contract: one attempt per plan, so the station re-plans
  // (and ARF sees every outcome) before each retry — byte-identical to the
  // old per-attempt API.
  Arf arf(10, 2);
  const TxPlan p = arf.plan({});
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.total_attempts(), 1u);
}

TEST(ArfTest, Name) {
  Arf arf(10, 2);
  EXPECT_EQ(arf.name(), "ARF");
}

}  // namespace
}  // namespace wlan::rate

// TraceAnalyzer on hand-built synthetic captures: every quantity checked
// against a pencil-and-paper computation of the paper's equations.
#include "core/analyzer.hpp"

#include <gtest/gtest.h>

namespace wlan::core {
namespace {

trace::CaptureRecord make_record(std::int64_t t, mac::FrameType type,
                                 mac::Addr src, mac::Addr dst,
                                 std::uint32_t size, phy::Rate rate,
                                 std::uint16_t seq = 0, bool retry = false) {
  trace::CaptureRecord r;
  r.time_us = t;
  r.type = type;
  r.src = src;
  r.dst = dst;
  r.bssid = 100;
  r.size_bytes = size;
  r.rate = rate;
  r.seq = seq;
  r.retry = retry;
  return r;
}

trace::Trace one_second_trace(std::vector<trace::CaptureRecord> records) {
  trace::Trace t;
  t.records = std::move(records);
  t.start_us = 0;
  t.end_us = 999'999;
  return t;
}

TEST(AnalyzerTest, EmptyTraceYieldsEmptyResult) {
  const TraceAnalyzer analyzer;
  const auto result = analyzer.analyze(trace::Trace{});
  EXPECT_TRUE(result.seconds.empty());
  EXPECT_EQ(result.total_frames, 0u);
}

TEST(AnalyzerTest, SingleDataFrameCbtMatchesEquation2) {
  const TraceAnalyzer analyzer;
  const auto result = analyzer.analyze(one_second_trace(
      {make_record(1000, mac::FrameType::kData, 1, 2, 1034, phy::Rate::kR1)}));
  ASSERT_EQ(result.seconds.size(), 1u);
  // CBT = DIFS + PLCP + 8*1034 = 50 + 192 + 8272.
  EXPECT_DOUBLE_EQ(result.seconds[0].cbt_us, 50 + 192 + 8272);
  EXPECT_NEAR(result.seconds[0].utilization(), (50 + 192 + 8272) / 1e4, 1e-9);
}

TEST(AnalyzerTest, UtilizationEquation8OnFullSecond) {
  // 70 data frames of 1034 B at 1 Mbps: 70 * 8514 us = 0.596 s busy.
  std::vector<trace::CaptureRecord> records;
  for (int i = 0; i < 70; ++i) {
    records.push_back(make_record(i * 14'000, mac::FrameType::kData, 1, 2,
                                  1034, phy::Rate::kR1,
                                  static_cast<std::uint16_t>(i)));
  }
  const TraceAnalyzer analyzer;
  const auto result = analyzer.analyze(one_second_trace(std::move(records)));
  ASSERT_EQ(result.seconds.size(), 1u);
  EXPECT_NEAR(result.seconds[0].utilization(), 70 * 8514 / 1e4, 1e-6);
}

TEST(AnalyzerTest, UtilizationClampedAt100) {
  std::vector<trace::CaptureRecord> records;
  for (int i = 0; i < 200; ++i) {
    records.push_back(make_record(i * 4000, mac::FrameType::kData, 1, 2, 1034,
                                  phy::Rate::kR1,
                                  static_cast<std::uint16_t>(i)));
  }
  const TraceAnalyzer analyzer;
  const auto result = analyzer.analyze(one_second_trace(std::move(records)));
  EXPECT_DOUBLE_EQ(result.seconds[0].utilization(), 100.0);
}

TEST(AnalyzerTest, AckedDataCountsTowardGoodput) {
  const auto data =
      make_record(0, mac::FrameType::kData, 1, 2, 1034, phy::Rate::kR11, 5);
  // Data ends at 192 + ceil(8*1034/11) = 944; ACK shortly after.
  const auto ack =
      make_record(954, mac::FrameType::kAck, 2, 1, 14, phy::Rate::kR1);
  const TraceAnalyzer analyzer;
  const auto result = analyzer.analyze(one_second_trace({data, ack}));
  const auto& s = result.seconds[0];
  EXPECT_EQ(s.bits_all, (1034u + 14u) * 8);
  EXPECT_EQ(s.bits_good, (1034u + 14u) * 8);  // acked data + control
  EXPECT_EQ(s.acked_by_rate[phy::rate_index(phy::Rate::kR11)], 1u);
  EXPECT_EQ(s.first_attempt_acked[phy::rate_index(phy::Rate::kR11)], 1u);
}

TEST(AnalyzerTest, UnackedDataExcludedFromGoodput) {
  const auto data =
      make_record(0, mac::FrameType::kData, 1, 2, 1034, phy::Rate::kR11, 5);
  const TraceAnalyzer analyzer;
  const auto result = analyzer.analyze(one_second_trace({data}));
  const auto& s = result.seconds[0];
  EXPECT_EQ(s.bits_all, 1034u * 8);
  EXPECT_EQ(s.bits_good, 0u);
  EXPECT_EQ(s.acked_by_rate[phy::rate_index(phy::Rate::kR11)], 0u);
}

TEST(AnalyzerTest, AckForDifferentStationDoesNotMatch) {
  const auto data =
      make_record(0, mac::FrameType::kData, 1, 2, 1034, phy::Rate::kR11, 5);
  const auto ack =
      make_record(954, mac::FrameType::kAck, 2, 7, 14, phy::Rate::kR1);
  const TraceAnalyzer analyzer;
  const auto result = analyzer.analyze(one_second_trace({data, ack}));
  EXPECT_EQ(result.seconds[0].acked_by_rate[3], 0u);
}

TEST(AnalyzerTest, LateAckDoesNotMatch) {
  const auto data =
      make_record(0, mac::FrameType::kData, 1, 2, 1034, phy::Rate::kR11, 5);
  const auto ack =
      make_record(5000, mac::FrameType::kAck, 2, 1, 14, phy::Rate::kR1);
  const TraceAnalyzer analyzer;
  const auto result = analyzer.analyze(one_second_trace({data, ack}));
  EXPECT_EQ(result.seconds[0].acked_by_rate[3], 0u);
}

TEST(AnalyzerTest, RetryNotCountedAsFirstAttempt) {
  const auto data = make_record(0, mac::FrameType::kData, 1, 2, 1034,
                                phy::Rate::kR11, 5, /*retry=*/true);
  const auto ack =
      make_record(954, mac::FrameType::kAck, 2, 1, 14, phy::Rate::kR1);
  const TraceAnalyzer analyzer;
  const auto result = analyzer.analyze(one_second_trace({data, ack}));
  const auto& s = result.seconds[0];
  EXPECT_EQ(s.acked_by_rate[3], 1u);
  EXPECT_EQ(s.first_attempt_acked[3], 0u);
  EXPECT_EQ(s.retries_by_rate[3], 1u);
}

TEST(AnalyzerTest, AcceptanceDelaySpansRetries) {
  // First attempt at t=0 (no ACK), retry at t=20000 ACKed: the acceptance
  // delay runs from the FIRST transmission to the recorded ACK.
  const auto first =
      make_record(0, mac::FrameType::kData, 1, 2, 1034, phy::Rate::kR11, 5);
  const auto retry = make_record(20'000, mac::FrameType::kData, 1, 2, 1034,
                                 phy::Rate::kR11, 5, true);
  const auto ack =
      make_record(20'954, mac::FrameType::kAck, 2, 1, 14, phy::Rate::kR1);
  const TraceAnalyzer analyzer;
  const auto result = analyzer.analyze(one_second_trace({first, retry, ack}));
  ASSERT_EQ(result.acceptance.size(), 1u);
  EXPECT_DOUBLE_EQ(result.acceptance[0].delay_us, 20'954.0);
  EXPECT_EQ(result.acceptance[0].category,
            category_index(SizeClass::kL, phy::Rate::kR11));
}

TEST(AnalyzerTest, FrameCategoriesCounted) {
  const auto small =
      make_record(0, mac::FrameType::kData, 1, 2, 100, phy::Rate::kR1, 1);
  const auto xl =
      make_record(100'000, mac::FrameType::kData, 1, 2, 1500, phy::Rate::kR11, 2);
  const TraceAnalyzer analyzer;
  const auto result = analyzer.analyze(one_second_trace({small, xl}));
  const auto& s = result.seconds[0];
  EXPECT_EQ(s.tx_by_category[category_index(SizeClass::kS, phy::Rate::kR1)], 1u);
  EXPECT_EQ(s.tx_by_category[category_index(SizeClass::kXL, phy::Rate::kR11)], 1u);
}

TEST(AnalyzerTest, ControlFrameCountsAndRtsSenders) {
  const auto rts =
      make_record(0, mac::FrameType::kRts, 1, 2, 20, phy::Rate::kR1);
  const auto cts =
      make_record(400, mac::FrameType::kCts, 2, 1, 14, phy::Rate::kR1);
  const auto beacon =
      make_record(1000, mac::FrameType::kBeacon, 9, mac::kBroadcast, 90,
                  phy::Rate::kR1);
  const TraceAnalyzer analyzer;
  const auto result = analyzer.analyze(one_second_trace({rts, cts, beacon}));
  const auto& s = result.seconds[0];
  EXPECT_EQ(s.rts, 1u);
  EXPECT_EQ(s.cts, 1u);
  EXPECT_EQ(s.beacon, 1u);
  ASSERT_TRUE(result.senders.count(1));
  EXPECT_TRUE(result.senders.at(1).uses_rtscts);
}

TEST(AnalyzerTest, PerRateBusyTimeSplit) {
  const auto slow =
      make_record(0, mac::FrameType::kData, 1, 2, 1034, phy::Rate::kR1, 1);
  const auto fast =
      make_record(500'000, mac::FrameType::kData, 1, 2, 1034, phy::Rate::kR11, 2);
  const TraceAnalyzer analyzer;
  const auto result = analyzer.analyze(one_second_trace({slow, fast}));
  const auto& s = result.seconds[0];
  EXPECT_DOUBLE_EQ(s.cbt_us_by_rate[phy::rate_index(phy::Rate::kR1)],
                   50 + 192 + 8272);
  EXPECT_DOUBLE_EQ(s.cbt_us_by_rate[phy::rate_index(phy::Rate::kR11)],
                   50 + 192 + 752);
  EXPECT_EQ(s.bytes_by_rate[phy::rate_index(phy::Rate::kR1)], 1034u);
  EXPECT_EQ(s.bytes_by_rate[phy::rate_index(phy::Rate::kR11)], 1034u);
}

TEST(AnalyzerTest, MultiSecondBucketing) {
  std::vector<trace::CaptureRecord> records;
  records.push_back(
      make_record(500'000, mac::FrameType::kData, 1, 2, 500, phy::Rate::kR11, 1));
  records.push_back(make_record(2'500'000, mac::FrameType::kData, 1, 2, 500,
                                phy::Rate::kR11, 2));
  trace::Trace t;
  t.records = std::move(records);
  t.start_us = 0;
  t.end_us = 2'999'999;
  const TraceAnalyzer analyzer;
  const auto result = analyzer.analyze(t);
  ASSERT_EQ(result.seconds.size(), 3u);
  EXPECT_EQ(result.seconds[0].data, 1u);
  EXPECT_EQ(result.seconds[1].data, 0u);
  EXPECT_EQ(result.seconds[2].data, 1u);
}

TEST(AnalyzerTest, UnsortedTraceThrows) {
  const TraceAnalyzer analyzer;
  trace::Trace t = one_second_trace(
      {make_record(900'000, mac::FrameType::kData, 1, 2, 500, phy::Rate::kR11, 1),
       make_record(100, mac::FrameType::kData, 1, 2, 500, phy::Rate::kR11, 2)});
  EXPECT_THROW(analyzer.analyze(t), std::invalid_argument);
}

TEST(AnalyzerTest, SenderDeliveryBookkeeping) {
  const auto d1 =
      make_record(0, mac::FrameType::kData, 1, 2, 500, phy::Rate::kR11, 1);
  const auto a1 =
      make_record(600, mac::FrameType::kAck, 2, 1, 14, phy::Rate::kR1);
  const auto d2 =
      make_record(100'000, mac::FrameType::kData, 1, 2, 500, phy::Rate::kR11, 2);
  const TraceAnalyzer analyzer;
  const auto result = analyzer.analyze(one_second_trace({d1, a1, d2}));
  const auto& sender = result.senders.at(1);
  EXPECT_EQ(sender.data_tx, 2u);
  EXPECT_EQ(sender.data_acked, 1u);
  EXPECT_FALSE(sender.uses_rtscts);
}


TEST(AnalyzerTest, RecordAtExactSecondBoundaryBucketsForward) {
  trace::Trace t;
  t.records = {make_record(1'000'000, mac::FrameType::kData, 1, 2, 500,
                           phy::Rate::kR11, 1)};
  t.start_us = 0;
  t.end_us = 1'999'999;
  const TraceAnalyzer analyzer;
  const auto result = analyzer.analyze(t);
  ASSERT_EQ(result.seconds.size(), 2u);
  EXPECT_EQ(result.seconds[0].data, 0u);
  EXPECT_EQ(result.seconds[1].data, 1u);
}

TEST(AnalyzerTest, TraceBoundsExtendBeyondRecords) {
  // Quiet tails still produce (empty) seconds: the paper's time series
  // include idle intervals.
  trace::Trace t;
  t.records = {make_record(100, mac::FrameType::kData, 1, 2, 500,
                           phy::Rate::kR11, 1)};
  t.start_us = 0;
  t.end_us = 4'999'999;
  const TraceAnalyzer analyzer;
  const auto result = analyzer.analyze(t);
  ASSERT_EQ(result.seconds.size(), 5u);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(result.seconds[i].utilization(), 0.0);
  }
}

TEST(AnalyzerTest, SlightClockJitterTolerated) {
  // Merged multi-sniffer captures can interleave within a few microseconds;
  // the sorted-input guard must not fire on <= 10 us inversions.
  trace::Trace t;
  t.records = {make_record(1000, mac::FrameType::kData, 1, 2, 500,
                           phy::Rate::kR11, 1),
               make_record(995, mac::FrameType::kData, 3, 2, 500,
                           phy::Rate::kR11, 1)};
  t.start_us = 0;
  t.end_us = 999'999;
  const TraceAnalyzer analyzer;
  EXPECT_NO_THROW(analyzer.analyze(t));
}

TEST(AnalyzerTest, DuplicateAckOnlyMatchesOnce) {
  // A retransmitted ACK (or a sniffer double-capture) must not double-count
  // goodput for the same data frame.
  const auto data =
      make_record(0, mac::FrameType::kData, 1, 2, 1034, phy::Rate::kR11, 5);
  const auto ack1 =
      make_record(954, mac::FrameType::kAck, 2, 1, 14, phy::Rate::kR1);
  const auto ack2 =
      make_record(1300, mac::FrameType::kAck, 2, 1, 14, phy::Rate::kR1);
  const TraceAnalyzer analyzer;
  const auto result = analyzer.analyze(one_second_trace({data, ack1, ack2}));
  EXPECT_EQ(result.seconds[0].acked_by_rate[phy::rate_index(phy::Rate::kR11)],
            1u);
  EXPECT_EQ(result.acceptance.size(), 1u);
}

}  // namespace
}  // namespace wlan::core

#include "core/unrecorded.hpp"

#include <gtest/gtest.h>

namespace wlan::core {
namespace {

constexpr mac::Addr kAp = 100;   // appears as BSSID
constexpr mac::Addr kSta = 7;

trace::CaptureRecord rec(std::int64_t t, mac::FrameType type, mac::Addr src,
                         mac::Addr dst, mac::Addr bssid = mac::kNoAddr) {
  trace::CaptureRecord r;
  r.time_us = t;
  r.type = type;
  r.src = src;
  r.dst = dst;
  r.bssid = bssid;
  r.size_bytes = type == mac::FrameType::kData ? 534 : 14;
  r.rate = phy::Rate::kR11;
  return r;
}

trace::Trace as_trace(std::vector<trace::CaptureRecord> records) {
  trace::Trace t;
  t.records = std::move(records);
  if (!t.records.empty()) {
    t.start_us = t.records.front().time_us;
    t.end_us = t.records.back().time_us;
  }
  return t;
}

TEST(UnrecordedTest, CompleteExchangeHasNoMisses) {
  const auto report = estimate_unrecorded(as_trace({
      rec(0, mac::FrameType::kData, kSta, kAp, kAp),
      rec(600, mac::FrameType::kAck, kAp, kSta),
  }));
  EXPECT_EQ(report.totals.missed(), 0u);
  EXPECT_DOUBLE_EQ(report.totals.unrecorded_pct(), 0.0);
}

TEST(UnrecordedTest, OrphanAckImpliesMissedData) {
  const auto report = estimate_unrecorded(as_trace({
      rec(0, mac::FrameType::kData, kSta, kAp, kAp),  // establishes BSSID
      rec(600, mac::FrameType::kAck, kAp, kSta),
      rec(100'000, mac::FrameType::kAck, kAp, kSta),  // no DATA before it
  }));
  EXPECT_EQ(report.totals.missed_data, 1u);
}

TEST(UnrecordedTest, AckAfterWrongSenderCountsAsMiss) {
  const auto report = estimate_unrecorded(as_trace({
      rec(0, mac::FrameType::kData, 9, kAp, kAp),
      rec(600, mac::FrameType::kAck, kAp, kSta),  // acknowledges kSta, not 9
  }));
  EXPECT_EQ(report.totals.missed_data, 1u);
}

TEST(UnrecordedTest, OrphanCtsImpliesMissedRts) {
  const auto report = estimate_unrecorded(as_trace({
      rec(0, mac::FrameType::kCts, kAp, kSta),
  }));
  EXPECT_EQ(report.totals.missed_rts, 1u);
}

TEST(UnrecordedTest, RtsThenCtsIsComplete) {
  const auto report = estimate_unrecorded(as_trace({
      rec(0, mac::FrameType::kRts, kSta, kAp),
      rec(362, mac::FrameType::kCts, kAp, kSta),
  }));
  EXPECT_EQ(report.totals.missed_rts, 0u);
}

TEST(UnrecordedTest, RtsDataWithoutCtsImpliesMissedCts) {
  const auto report = estimate_unrecorded(as_trace({
      rec(0, mac::FrameType::kRts, kSta, kAp),
      rec(700, mac::FrameType::kData, kSta, kAp, kAp),
      rec(1400, mac::FrameType::kAck, kAp, kSta),
  }));
  EXPECT_EQ(report.totals.missed_cts, 1u);
}

TEST(UnrecordedTest, RtsCtsDataSequenceComplete) {
  const auto report = estimate_unrecorded(as_trace({
      rec(0, mac::FrameType::kRts, kSta, kAp),
      rec(362, mac::FrameType::kCts, kAp, kSta),
      rec(700, mac::FrameType::kData, kSta, kAp, kAp),
      rec(1400, mac::FrameType::kAck, kAp, kSta),
  }));
  EXPECT_EQ(report.totals.missed(), 0u);
}

TEST(UnrecordedTest, Equation1Percentage) {
  // 3 captured frames, 1 inferred miss: 1 / (1 + 3) = 25%.
  const auto report = estimate_unrecorded(as_trace({
      rec(0, mac::FrameType::kData, kSta, kAp, kAp),
      rec(600, mac::FrameType::kAck, kAp, kSta),
      rec(100'000, mac::FrameType::kAck, kAp, kSta),
  }));
  EXPECT_EQ(report.totals.captured, 3u);
  EXPECT_DOUBLE_EQ(report.totals.unrecorded_pct(), 25.0);
}

TEST(UnrecordedTest, MissAttributedToApOfSender) {
  // The orphan ACK is addressed to kSta, whose BSSID is learned from the
  // initial data frame; the miss lands on kAp's tally.
  const auto report = estimate_unrecorded(as_trace({
      rec(0, mac::FrameType::kData, kSta, kAp, kAp),
      rec(600, mac::FrameType::kAck, kAp, kSta),
      rec(100'000, mac::FrameType::kAck, kAp, kSta),
  }));
  ASSERT_FALSE(report.per_ap.empty());
  EXPECT_EQ(report.per_ap[0].bssid, kAp);
  EXPECT_EQ(report.per_ap[0].missed, 1u);
  EXPECT_GT(report.per_ap[0].captured, 0u);
}

TEST(UnrecordedTest, PerApRankingByActivity) {
  std::vector<trace::CaptureRecord> records;
  // AP 100 carries 10 frames, AP 200 carries 2.
  for (int i = 0; i < 10; ++i) {
    records.push_back(rec(i * 10'000, mac::FrameType::kData, kSta, 100, 100));
  }
  for (int i = 0; i < 2; ++i) {
    records.push_back(
        rec(200'000 + i * 10'000, mac::FrameType::kData, 8, 200, 200));
  }
  const auto report = estimate_unrecorded(as_trace(std::move(records)));
  ASSERT_EQ(report.per_ap.size(), 2u);
  EXPECT_EQ(report.per_ap[0].bssid, 100);
  EXPECT_GT(report.per_ap[0].captured, report.per_ap[1].captured);
}

TEST(UnrecordedTest, EmptyTraceSafe) {
  const auto report = estimate_unrecorded(trace::Trace{});
  EXPECT_EQ(report.totals.missed(), 0u);
  EXPECT_DOUBLE_EQ(report.totals.unrecorded_pct(), 0.0);
  EXPECT_TRUE(report.per_ap.empty());
}

}  // namespace
}  // namespace wlan::core

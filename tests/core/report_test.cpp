#include "core/report.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wlan::core {
namespace {

/// Builds a result whose seconds sit at `util` with the given per-rate
/// busy-time and throughput.
AnalysisResult synthetic(double util, double mbps, int seconds) {
  AnalysisResult result;
  for (int i = 0; i < seconds; ++i) {
    SecondStats s;
    s.second = i;
    s.cbt_us = util * 1e4;
    s.bits_all = static_cast<std::uint64_t>(mbps * 1e6);
    s.bits_good = static_cast<std::uint64_t>(mbps * 0.9e6);
    s.rts = 4;
    s.cts = 3;
    s.cbt_us_by_rate[0] = util * 1e4 * 0.6;
    s.cbt_us_by_rate[3] = util * 1e4 * 0.4;
    s.bytes_by_rate[3] = 100'000;
    s.tx_by_category[category_index(SizeClass::kS, phy::Rate::kR11)] = 20;
    s.first_attempt_acked[3] = 15;
    result.seconds.push_back(s);
  }
  return result;
}

TEST(FigureAccumulatorTest, AbsorbsSeconds) {
  FigureAccumulator acc;
  acc.add(synthetic(50, 2.0, 5));
  acc.add(synthetic(80, 4.0, 7));
  EXPECT_EQ(acc.seconds_absorbed(), 12u);
}

TEST(FigureAccumulatorTest, Fig06SeriesHoldBinnedMeans) {
  FigureAccumulator acc;
  acc.add(synthetic(50, 2.0, 5));
  const auto fig = acc.fig06_throughput_goodput(1);
  // x axis runs 30..99; bin 50 is index 20.
  ASSERT_EQ(fig.x.size(), 70u);
  EXPECT_DOUBLE_EQ(fig.x[20], 50.0);
  EXPECT_DOUBLE_EQ(fig.series[0].ys[20], 2.0);
  EXPECT_DOUBLE_EQ(fig.series[1].ys[20], 1.8);
  EXPECT_TRUE(std::isnan(fig.series[0].ys[0]));  // empty bin
}

TEST(FigureAccumulatorTest, Fig07CountsRtsCts) {
  FigureAccumulator acc;
  acc.add(synthetic(60, 2.0, 4));
  const auto fig = acc.fig07_rts_cts(1);
  EXPECT_DOUBLE_EQ(fig.series[0].ys[30], 4.0);  // RTS at bin 60
  EXPECT_DOUBLE_EQ(fig.series[1].ys[30], 3.0);  // CTS
}

TEST(FigureAccumulatorTest, Fig08SharesInSeconds) {
  FigureAccumulator acc;
  acc.add(synthetic(50, 2.0, 3));
  const auto fig = acc.fig08_busytime_share(1);
  EXPECT_NEAR(fig.series[0].ys[20], 0.3, 1e-9);   // 1 Mbps share
  EXPECT_NEAR(fig.series[3].ys[20], 0.2, 1e-9);   // 11 Mbps share
}

TEST(FigureAccumulatorTest, Fig14FirstAttempt) {
  FigureAccumulator acc;
  acc.add(synthetic(70, 2.0, 2));
  const auto fig = acc.fig14_first_attempt_acked(1);
  EXPECT_DOUBLE_EQ(fig.series[3].ys[40], 15.0);
}

TEST(FigureAccumulatorTest, Fig15UsesAcceptanceSamples) {
  AnalysisResult result = synthetic(60, 2.0, 2);
  AcceptanceSample sample;
  sample.second = 0;
  sample.category = category_index(SizeClass::kS, phy::Rate::kR1);
  sample.delay_us = 40'000;
  result.acceptance.push_back(sample);
  FigureAccumulator acc;
  acc.add(result);
  const auto fig = acc.fig15_acceptance_delay(1);
  // S-1 is the first series; bin 60 -> index 30; delay in seconds.
  EXPECT_NEAR(fig.series[0].ys[30], 0.04, 1e-9);
}

TEST(FigureAccumulatorTest, FairnessAggregatesSenders) {
  AnalysisResult result;
  SenderStats rts_user;
  rts_user.data_tx = 100;
  rts_user.data_acked = 40;
  rts_user.uses_rtscts = true;
  SenderStats plain;
  plain.data_tx = 100;
  plain.data_acked = 80;
  result.senders[1] = rts_user;
  result.senders[2] = plain;
  FigureAccumulator acc;
  acc.add(result);
  const auto fair = acc.rts_fairness();
  EXPECT_EQ(fair.rts_senders, 1u);
  EXPECT_EQ(fair.other_senders, 1u);
  EXPECT_DOUBLE_EQ(fair.rts_delivery_ratio, 0.4);
  EXPECT_DOUBLE_EQ(fair.other_delivery_ratio, 0.8);
}

TEST(FigureAccumulatorTest, KneeFindsPeakBin) {
  FigureAccumulator acc;
  for (int u = 30; u <= 95; u += 5) {
    const double thr = u <= 80 ? u / 20.0 : 4.0 - (u - 80) / 5.0;
    acc.add(synthetic(u, thr, 3));
  }
  EXPECT_NEAR(acc.knee_utilization(), 80.0, 5.0);
}

TEST(RenderFigureTest, ProducesChartAndTable) {
  FigureAccumulator acc;
  acc.add(synthetic(50, 2.0, 5));
  const auto text = render_figure(acc.fig06_throughput_goodput(1));
  EXPECT_NE(text.find("Figure 6"), std::string::npos);
  EXPECT_NE(text.find("Throughput"), std::string::npos);
  EXPECT_NE(text.find("Goodput"), std::string::npos);
  EXPECT_NE(text.find('|'), std::string::npos);  // table rows
}

TEST(FigureAccumulatorTest, CategoriesFlowIntoFigs10To13) {
  FigureAccumulator acc;
  acc.add(synthetic(50, 2.0, 4));
  const auto fig10 = acc.fig10_11_frames_of_class(SizeClass::kS, 1);
  EXPECT_DOUBLE_EQ(fig10.series[3].ys[20], 20.0);  // S-11 at bin 50
  const auto fig13 = acc.fig12_13_frames_at_rate(phy::Rate::kR11, 1);
  EXPECT_DOUBLE_EQ(fig13.series[0].ys[20], 20.0);  // S-11 again
}

}  // namespace
}  // namespace wlan::core

#include "core/delay_components.hpp"

#include <gtest/gtest.h>

namespace wlan::core {
namespace {

trace::CaptureRecord record_of(mac::FrameType type, std::uint32_t size,
                               phy::Rate rate) {
  trace::CaptureRecord r;
  r.type = type;
  r.size_bytes = size;
  r.rate = rate;
  return r;
}

TEST(DelayComponentsTest, Table2Values) {
  const auto d = DelayComponents::paper();
  EXPECT_EQ(d.difs.count(), 50);
  EXPECT_EQ(d.sifs.count(), 10);
  EXPECT_EQ(d.rts.count(), 352);
  EXPECT_EQ(d.cts.count(), 304);
  EXPECT_EQ(d.ack.count(), 304);
  EXPECT_EQ(d.beacon.count(), 304);
  EXPECT_EQ(d.bo.count(), 0);  // saturated-network assumption
  EXPECT_EQ(d.plcp.count(), 192);
}

TEST(DelayComponentsTest, DataDurationFormula) {
  const auto d = DelayComponents::paper();
  // D_PLCP + 8*(34+size)/rate, exact at 1 and 2 Mbps.
  EXPECT_EQ(d.data_duration_payload(100, phy::Rate::kR1).count(),
            192 + 8 * 134);
  EXPECT_EQ(d.data_duration_payload(100, phy::Rate::kR2).count(),
            192 + 4 * 134);
  // Total-size variant excludes the +34.
  EXPECT_EQ(d.data_duration_total(134, phy::Rate::kR1).count(), 192 + 8 * 134);
}

TEST(DelayComponentsTest, Equation2DataCbt) {
  const auto d = DelayComponents::paper();
  const auto r = record_of(mac::FrameType::kData, 1034, phy::Rate::kR1);
  // CBT_DATA = D_DIFS + D_DATA.
  EXPECT_EQ(d.cbt(r).count(), 50 + 192 + 8 * 1034);
}

TEST(DelayComponentsTest, Equation3RtsCbt) {
  const auto d = DelayComponents::paper();
  // CBT_RTS = D_RTS only (the DIFS is charged to the data frame).
  EXPECT_EQ(d.cbt(record_of(mac::FrameType::kRts, 20, phy::Rate::kR1)).count(),
            352);
}

TEST(DelayComponentsTest, Equation4CtsCbt) {
  const auto d = DelayComponents::paper();
  EXPECT_EQ(d.cbt(record_of(mac::FrameType::kCts, 14, phy::Rate::kR1)).count(),
            10 + 304);
}

TEST(DelayComponentsTest, Equation5AckCbt) {
  const auto d = DelayComponents::paper();
  EXPECT_EQ(d.cbt(record_of(mac::FrameType::kAck, 14, phy::Rate::kR1)).count(),
            10 + 304);
}

TEST(DelayComponentsTest, Equation6BeaconCbt) {
  const auto d = DelayComponents::paper();
  EXPECT_EQ(
      d.cbt(record_of(mac::FrameType::kBeacon, 90, phy::Rate::kR1)).count(),
      50 + 304);
}

TEST(DelayComponentsTest, ManagementFramesChargedAsData) {
  const auto d = DelayComponents::paper();
  const auto assoc = record_of(mac::FrameType::kAssocReq, 40, phy::Rate::kR1);
  EXPECT_EQ(d.cbt(assoc).count(), 50 + 192 + 8 * 40);
}

TEST(DelayComponentsTest, CbtScalesInverselyWithRate) {
  const auto d = DelayComponents::paper();
  const auto slow = d.cbt(record_of(mac::FrameType::kData, 1506, phy::Rate::kR1));
  const auto fast = d.cbt(record_of(mac::FrameType::kData, 1506, phy::Rate::kR11));
  EXPECT_GT(slow.count(), 4 * fast.count());
}

class CbtSweep : public ::testing::TestWithParam<phy::Rate> {};

TEST_P(CbtSweep, LargerFramesCostMoreBusyTime) {
  const auto d = DelayComponents::paper();
  Microseconds prev{0};
  for (std::uint32_t size : {100u, 400u, 800u, 1200u, 1506u}) {
    const auto cbt = d.cbt(record_of(mac::FrameType::kData, size, GetParam()));
    EXPECT_GT(cbt, prev);
    prev = cbt;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRates, CbtSweep,
                         ::testing::ValuesIn(phy::kAllRates.begin(),
                                             phy::kAllRates.end()));

}  // namespace
}  // namespace wlan::core

#include "core/congestion.hpp"

#include <gtest/gtest.h>

namespace wlan::core {
namespace {

TEST(ClassifyTest, PaperThresholds) {
  EXPECT_EQ(classify(0.0), CongestionLevel::kUncongested);
  EXPECT_EQ(classify(29.9), CongestionLevel::kUncongested);
  EXPECT_EQ(classify(30.0), CongestionLevel::kModerate);
  EXPECT_EQ(classify(84.0), CongestionLevel::kModerate);
  EXPECT_EQ(classify(84.1), CongestionLevel::kHigh);
  EXPECT_EQ(classify(99.0), CongestionLevel::kHigh);
}

TEST(ClassifyTest, CustomThresholds) {
  const CongestionThresholds t{20.0, 70.0};
  EXPECT_EQ(classify(25.0, t), CongestionLevel::kModerate);
  EXPECT_EQ(classify(75.0, t), CongestionLevel::kHigh);
}

TEST(ClassifyTest, LevelNames) {
  EXPECT_EQ(congestion_level_name(CongestionLevel::kUncongested), "uncongested");
  EXPECT_EQ(congestion_level_name(CongestionLevel::kModerate),
            "moderately congested");
  EXPECT_EQ(congestion_level_name(CongestionLevel::kHigh), "highly congested");
}

AnalysisResult result_with(const std::vector<std::pair<double, double>>&
                               util_throughput_pairs) {
  AnalysisResult result;
  for (const auto& [util, mbps] : util_throughput_pairs) {
    SecondStats s;
    s.cbt_us = util * 1e4;
    s.bits_all = static_cast<std::uint64_t>(mbps * 1e6);
    result.seconds.push_back(s);
  }
  return result;
}

TEST(KneeDetectionTest, FindsSyntheticPeak) {
  // Throughput rises to a peak at 80% and falls beyond it.
  std::vector<std::pair<double, double>> samples;
  for (int u = 30; u <= 99; ++u) {
    const double thr = u <= 80 ? u / 20.0 : 4.0 - (u - 80) / 10.0;
    for (int k = 0; k < 3; ++k) samples.push_back({double(u), thr});
  }
  const double knee = detect_saturation_knee(result_with(samples));
  EXPECT_NEAR(knee, 80.0, 3.0);
}

TEST(KneeDetectionTest, MonotoneCurvePeaksAtTop) {
  std::vector<std::pair<double, double>> samples;
  for (int u = 30; u <= 99; ++u) samples.push_back({double(u), u / 25.0});
  const double knee = detect_saturation_knee(result_with(samples));
  EXPECT_GE(knee, 95.0);
}

TEST(KneeDetectionTest, SparseDataFallsBackToDefault) {
  const double knee = detect_saturation_knee(result_with({{50.0, 2.0}}));
  EXPECT_DOUBLE_EQ(knee, CongestionThresholds{}.high_pct);
}

TEST(BreakdownTest, CountsSecondsPerLevel) {
  const auto result =
      result_with({{10, 1}, {20, 1}, {50, 2}, {85, 3}, {95, 2}, {60, 2}});
  const auto b = breakdown(result);
  EXPECT_EQ(b.uncongested, 2u);
  EXPECT_EQ(b.moderate, 2u);
  EXPECT_EQ(b.high, 2u);
}

}  // namespace
}  // namespace wlan::core

#include "core/session_report.hpp"

#include <gtest/gtest.h>

#include "workload/scenario.hpp"

namespace wlan::core {
namespace {

class SessionReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::CellConfig cell;
    cell.seed = 880;
    cell.num_users = 16;
    cell.per_user_pps = 10.0;
    cell.duration_s = 10.0;
    cell.profile.closed_loop = true;
    result_ = new workload::CellResult(workload::run_cell(cell));
    analysis_ = new AnalysisResult(TraceAnalyzer{}.analyze(result_->trace));
    summary_ = new SessionSummary(summarize(*analysis_, result_->trace));
  }
  static void TearDownTestSuite() {
    delete summary_;
    delete analysis_;
    delete result_;
  }
  static workload::CellResult* result_;
  static AnalysisResult* analysis_;
  static SessionSummary* summary_;
};

workload::CellResult* SessionReportTest::result_ = nullptr;
AnalysisResult* SessionReportTest::analysis_ = nullptr;
SessionSummary* SessionReportTest::summary_ = nullptr;

TEST_F(SessionReportTest, CountsMatchAnalysis) {
  EXPECT_EQ(summary_->frames, analysis_->total_frames);
  EXPECT_EQ(summary_->data, analysis_->total_data);
  EXPECT_EQ(summary_->acks, analysis_->total_acks);
  EXPECT_DOUBLE_EQ(summary_->duration_s, analysis_->duration_seconds());
}

TEST_F(SessionReportTest, UtilizationStatisticsConsistent) {
  EXPECT_GT(summary_->mean_utilization_pct, 0.0);
  EXPECT_GE(summary_->max_utilization_pct, summary_->mean_utilization_pct);
  EXPECT_LE(summary_->max_utilization_pct, 100.0);
}

TEST_F(SessionReportTest, ThroughputGoodputOrdering) {
  EXPECT_GE(summary_->mean_throughput_mbps, summary_->mean_goodput_mbps);
  EXPECT_GE(summary_->peak_throughput_mbps, summary_->mean_throughput_mbps);
}

TEST_F(SessionReportTest, CongestionSecondsSumToDuration) {
  EXPECT_EQ(summary_->congestion.uncongested + summary_->congestion.moderate +
                summary_->congestion.high,
            analysis_->seconds.size());
}

TEST_F(SessionReportTest, BusyShareBoundedByOneSecond) {
  double total = 0;
  for (double v : summary_->busy_share_s) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_LE(total, 1.05);  // CBT sums can slightly exceed via DIFS charges
}

TEST_F(SessionReportTest, RetryFractionIsAFraction) {
  EXPECT_GE(summary_->retry_fraction, 0.0);
  EXPECT_LE(summary_->retry_fraction, 1.0);
}

TEST_F(SessionReportTest, RenderingContainsHeadlines) {
  const std::string text = render_summary(*summary_);
  EXPECT_NE(text.find("session report"), std::string::npos);
  EXPECT_NE(text.find("utilization"), std::string::npos);
  EXPECT_NE(text.find("congestion"), std::string::npos);
  EXPECT_NE(text.find("throughput"), std::string::npos);
  EXPECT_NE(text.find("Fig. 8"), std::string::npos);
  EXPECT_NE(text.find("unrecorded"), std::string::npos);
}

TEST(SessionReportEmpty, EmptyAnalysisSafe) {
  const auto summary = summarize(AnalysisResult{}, trace::Trace{});
  EXPECT_EQ(summary.frames, 0u);
  EXPECT_DOUBLE_EQ(summary.mean_utilization_pct, 0.0);
  const std::string text = render_summary(summary);
  EXPECT_FALSE(text.empty());
}

}  // namespace
}  // namespace wlan::core

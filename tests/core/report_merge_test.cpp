// merge() on the aggregation types: UtilizationBinner, SecondStats and
// FigureAccumulator — the primitives the parallel experiment runner's
// ordered reduction is built on.
#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "core/report.hpp"
#include "core/utilization.hpp"

namespace wlan::core {
namespace {

TEST(UtilizationBinnerMergeTest, SumsAndCountsFold) {
  UtilizationBinner a, b;
  a.add(50.0, 2.0);
  a.add(50.0, 4.0);
  b.add(50.0, 6.0);
  b.add(80.0, 10.0);

  a.merge(b);
  EXPECT_EQ(a.count(50), 3u);
  EXPECT_DOUBLE_EQ(a.mean(50), 4.0);
  EXPECT_EQ(a.count(80), 1u);
  EXPECT_DOUBLE_EQ(a.mean(80), 10.0);
  // b untouched
  EXPECT_EQ(b.count(50), 1u);
}

TEST(SecondStatsMergeTest, CountersAndBusyTimeFold) {
  SecondStats a, b;
  a.second = 3;
  a.cbt_us = 400000.0;
  a.bits_all = 1000;
  a.bits_good = 900;
  a.data = 10;
  a.ack = 9;
  a.rts = 2;
  a.cts = 1;
  a.cbt_us_by_rate[0] = 150000.0;
  a.tx_by_category[5] = 4;
  a.retries_by_rate[3] = 2;

  b.second = 9;  // must NOT overwrite a.second
  b.cbt_us = 100000.0;
  b.bits_all = 500;
  b.bits_good = 400;
  b.data = 5;
  b.beacon = 7;
  b.cbt_us_by_rate[0] = 50000.0;
  b.tx_by_category[5] = 1;
  b.first_attempt_acked[2] = 3;

  a.merge(b);
  EXPECT_EQ(a.second, 3);
  EXPECT_DOUBLE_EQ(a.cbt_us, 500000.0);
  EXPECT_EQ(a.bits_all, 1500u);
  EXPECT_EQ(a.bits_good, 1300u);
  EXPECT_EQ(a.data, 15u);
  EXPECT_EQ(a.ack, 9u);
  EXPECT_EQ(a.beacon, 7u);
  EXPECT_DOUBLE_EQ(a.cbt_us_by_rate[0], 200000.0);
  EXPECT_EQ(a.tx_by_category[5], 5u);
  EXPECT_EQ(a.retries_by_rate[3], 2u);
  EXPECT_EQ(a.first_attempt_acked[2], 3u);
  EXPECT_DOUBLE_EQ(a.utilization(), 50.0);
}

/// Fabricates an analysis whose seconds carry integer-valued metrics so
/// double sums are exact and merge vs sequential add compare bit-for-bit.
AnalysisResult fake_analysis(int n_seconds, double cbt_us, std::uint64_t bits,
                             mac::Addr sender, bool rtscts) {
  AnalysisResult a;
  for (int t = 0; t < n_seconds; ++t) {
    SecondStats s;
    s.second = t;
    s.cbt_us = cbt_us;
    s.bits_all = bits;
    s.bits_good = bits / 2;
    s.rts = rtscts ? 3 : 0;
    s.cts = rtscts ? 2 : 0;
    s.cbt_us_by_rate[3] = cbt_us / 2;
    s.bytes_by_rate[3] = bits / 8;
    s.first_attempt_acked[3] = 4;
    s.tx_by_category[7] = 6;
    a.seconds.push_back(s);

    AcceptanceSample sample;
    sample.second = t;
    sample.category = 7;
    sample.delay_us = 2000.0;
    a.acceptance.push_back(sample);
  }
  SenderStats st;
  st.data_tx = 100;
  st.data_acked = 90;
  st.rts_tx = rtscts ? 30 : 0;
  st.uses_rtscts = rtscts;
  a.senders[sender] = st;
  return a;
}

TEST(FigureAccumulatorMergeTest, MergeEqualsSequentialAdd) {
  const auto a1 = fake_analysis(5, 400000.0, 1000000, 11, false);
  const auto a2 = fake_analysis(7, 800000.0, 3000000, 22, true);

  FigureAccumulator seq;
  seq.add(a1);
  seq.add(a2);

  FigureAccumulator left, right;
  left.add(a1);
  right.add(a2);
  left.merge(right);

  EXPECT_EQ(left.seconds_absorbed(), seq.seconds_absorbed());
  EXPECT_EQ(core::render_figure(left.fig06_throughput_goodput(1)),
            core::render_figure(seq.fig06_throughput_goodput(1)));
  EXPECT_EQ(core::render_figure(left.fig08_busytime_share(1)),
            core::render_figure(seq.fig08_busytime_share(1)));
  EXPECT_EQ(core::render_figure(left.fig14_first_attempt_acked(1)),
            core::render_figure(seq.fig14_first_attempt_acked(1)));
  EXPECT_EQ(core::render_figure(left.fig15_acceptance_delay(1)),
            core::render_figure(seq.fig15_acceptance_delay(1)));

  const auto fair_merged = left.rts_fairness();
  const auto fair_seq = seq.rts_fairness();
  EXPECT_EQ(fair_merged.rts_senders, fair_seq.rts_senders);
  EXPECT_EQ(fair_merged.other_senders, fair_seq.other_senders);
  EXPECT_DOUBLE_EQ(fair_merged.rts_delivery_ratio, fair_seq.rts_delivery_ratio);
  EXPECT_DOUBLE_EQ(fair_merged.other_delivery_ratio,
                   fair_seq.other_delivery_ratio);
}

TEST(FigureAccumulatorMergeTest, MergeIntoEmptyIsIdentity) {
  const auto a = fake_analysis(4, 600000.0, 2000000, 5, true);
  FigureAccumulator direct;
  direct.add(a);

  FigureAccumulator empty, from;
  from.add(a);
  empty.merge(from);
  EXPECT_EQ(core::render_figure(empty.fig07_rts_cts(1)),
            core::render_figure(direct.fig07_rts_cts(1)));
  EXPECT_EQ(empty.seconds_absorbed(), direct.seconds_absorbed());
}

}  // namespace
}  // namespace wlan::core

#include "core/per_ap.hpp"

#include <gtest/gtest.h>

namespace wlan::core {
namespace {

trace::CaptureRecord rec(std::int64_t t, mac::FrameType type, mac::Addr src,
                         mac::Addr dst, mac::Addr bssid = mac::kNoAddr) {
  trace::CaptureRecord r;
  r.time_us = t;
  r.type = type;
  r.src = src;
  r.dst = dst;
  r.bssid = bssid;
  r.size_bytes = 500;
  return r;
}

trace::Trace as_trace(std::vector<trace::CaptureRecord> records,
                      std::int64_t end_us = 0) {
  trace::Trace t;
  t.records = std::move(records);
  if (!t.records.empty()) {
    t.start_us = 0;
    t.end_us = end_us ? end_us : t.records.back().time_us;
  }
  return t;
}

TEST(ApActivityTest, GroupsByBssid) {
  const auto aps = ap_activity(as_trace({
      rec(0, mac::FrameType::kData, 1, 100, 100),
      rec(10, mac::FrameType::kData, 100, 1, 100),
      rec(20, mac::FrameType::kData, 2, 200, 200),
  }));
  ASSERT_EQ(aps.size(), 2u);
  EXPECT_EQ(aps[0].bssid, 100);
  EXPECT_EQ(aps[0].frames, 2u);
  EXPECT_EQ(aps[1].bssid, 200);
}

TEST(ApActivityTest, ControlFramesAttributedViaAddresses) {
  const auto aps = ap_activity(as_trace({
      rec(0, mac::FrameType::kData, 1, 100, 100),  // learns 1 -> 100
      rec(10, mac::FrameType::kAck, 100, 1),       // dst=1: client of 100
      rec(20, mac::FrameType::kAck, 1, 100),       // dst=100: the AP itself
  }));
  ASSERT_EQ(aps.size(), 1u);
  EXPECT_EQ(aps[0].frames, 3u);
  EXPECT_EQ(aps[0].control_frames, 2u);
  EXPECT_EQ(aps[0].data_frames, 1u);
}

TEST(ApActivityTest, BeaconsCounted) {
  const auto aps = ap_activity(as_trace({
      rec(0, mac::FrameType::kBeacon, 100, mac::kBroadcast, 100),
      rec(10, mac::FrameType::kBeacon, 100, mac::kBroadcast, 100),
  }));
  ASSERT_EQ(aps.size(), 1u);
  EXPECT_EQ(aps[0].beacons, 2u);
}

TEST(ApActivityTest, SortedDescending) {
  std::vector<trace::CaptureRecord> records;
  for (int i = 0; i < 3; ++i) records.push_back(rec(i, mac::FrameType::kData, 1, 100, 100));
  for (int i = 0; i < 9; ++i) records.push_back(rec(100 + i, mac::FrameType::kData, 2, 200, 200));
  const auto aps = ap_activity(as_trace(std::move(records)));
  ASSERT_EQ(aps.size(), 2u);
  EXPECT_EQ(aps[0].bssid, 200);
  EXPECT_GE(aps[0].frames, aps[1].frames);
}

TEST(ApActivityTest, EmptyTrace) {
  EXPECT_TRUE(ap_activity(trace::Trace{}).empty());
}

TEST(ApActivityTest, RoamingClientCountsOnceAtItsLatestAp) {
  // A churn capture: client 1 appears mid-run on AP 100, roams to AP 200;
  // client 2 stays on 100.  Last association wins — nobody double-counts.
  const auto aps = ap_activity(as_trace({
      rec(0, mac::FrameType::kBeacon, 100, mac::kBroadcast, 100),
      rec(5, mac::FrameType::kBeacon, 200, mac::kBroadcast, 200),
      rec(10, mac::FrameType::kData, 2, 100, 100),
      rec(50'000, mac::FrameType::kData, 1, 100, 100),  // appears mid-run
      rec(90'000, mac::FrameType::kData, 1, 200, 200),  // roams to 200
  }));
  ASSERT_EQ(aps.size(), 2u);
  const auto& ap100 = aps[0].bssid == 100 ? aps[0] : aps[1];
  const auto& ap200 = aps[0].bssid == 200 ? aps[0] : aps[1];
  EXPECT_EQ(ap100.clients, 1u);  // client 2 only; client 1 moved on
  EXPECT_EQ(ap200.clients, 1u);  // client 1 ended here
}

TEST(UserCountTest, CountsActiveClients) {
  // Two clients active in the first window, one in the second.
  UserCountConfig cfg;
  cfg.window = Microseconds{1'000'000};
  cfg.idle_timeout = Microseconds{1'500'000};
  const auto series = user_count_series(
      as_trace(
          {
              rec(100, mac::FrameType::kData, 1, 100, 100),
              rec(200, mac::FrameType::kData, 2, 100, 100),
              rec(1'200'000, mac::FrameType::kData, 1, 100, 100),
              rec(3'500'000, mac::FrameType::kData, 1, 100, 100),
          },
          4'000'000),
      cfg);
  ASSERT_GE(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].users, 2.0);  // after first window
}

TEST(UserCountTest, DisassocRemovesClient) {
  UserCountConfig cfg;
  cfg.window = Microseconds{1'000'000};
  cfg.idle_timeout = Microseconds{60'000'000};
  const auto series = user_count_series(
      as_trace(
          {
              rec(100, mac::FrameType::kData, 1, 100, 100),
              rec(200, mac::FrameType::kData, 2, 100, 100),
              rec(500'000, mac::FrameType::kDisassoc, 2, 100, 100),
          },
          2'000'000),
      cfg);
  ASSERT_GE(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].users, 1.0);
}

TEST(UserCountTest, IdleTimeoutExpiresSilentClients) {
  UserCountConfig cfg;
  cfg.window = Microseconds{1'000'000};
  cfg.idle_timeout = Microseconds{2'000'000};
  const auto series = user_count_series(
      as_trace(
          {
              rec(100, mac::FrameType::kData, 1, 100, 100),
              rec(5'500'000, mac::FrameType::kData, 2, 100, 100),
          },
          6'000'000),
      cfg);
  // By the 5th window client 1 has been silent > 2 s and is gone.
  ASSERT_GE(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series[0].users, 1.0);
  EXPECT_DOUBLE_EQ(series[4].users, 0.0);
}

TEST(UserCountTest, ApsNeverCountedAsUsers) {
  UserCountConfig cfg;
  cfg.window = Microseconds{1'000'000};
  const auto series = user_count_series(
      as_trace(
          {
              rec(0, mac::FrameType::kBeacon, 100, mac::kBroadcast, 100),
              rec(100, mac::FrameType::kData, 100, 1, 100),  // downlink
          },
          2'000'000),
      cfg);
  for (const auto& p : series) EXPECT_DOUBLE_EQ(p.users, 0.0);
}

TEST(UserCountTest, EmptyTrace) {
  EXPECT_TRUE(user_count_series(trace::Trace{}).empty());
}

}  // namespace
}  // namespace wlan::core

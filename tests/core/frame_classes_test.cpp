#include "core/frame_classes.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wlan::core {
namespace {

TEST(SizeClassTest, PaperBoundaries) {
  EXPECT_EQ(size_class(0), SizeClass::kS);
  EXPECT_EQ(size_class(400), SizeClass::kS);
  EXPECT_EQ(size_class(401), SizeClass::kM);
  EXPECT_EQ(size_class(800), SizeClass::kM);
  EXPECT_EQ(size_class(801), SizeClass::kL);
  EXPECT_EQ(size_class(1200), SizeClass::kL);
  EXPECT_EQ(size_class(1201), SizeClass::kXL);
  EXPECT_EQ(size_class(1506), SizeClass::kXL);
}

TEST(SizeClassTest, Names) {
  EXPECT_EQ(size_class_name(SizeClass::kS), "S");
  EXPECT_EQ(size_class_name(SizeClass::kM), "M");
  EXPECT_EQ(size_class_name(SizeClass::kL), "L");
  EXPECT_EQ(size_class_name(SizeClass::kXL), "XL");
}

TEST(CategoryTest, SixteenDistinctIndices) {
  std::set<std::size_t> seen;
  for (std::size_t c = 0; c < kNumSizeClasses; ++c) {
    for (phy::Rate r : phy::kAllRates) {
      const auto idx = category_index(static_cast<SizeClass>(c), r);
      EXPECT_LT(idx, kNumCategories);
      seen.insert(idx);
    }
  }
  EXPECT_EQ(seen.size(), kNumCategories);
  EXPECT_EQ(kNumCategories, 16u);
}

TEST(CategoryTest, PaperNamingConvention) {
  EXPECT_EQ(category_name(SizeClass::kS, phy::Rate::kR11), "S-11");
  EXPECT_EQ(category_name(SizeClass::kXL, phy::Rate::kR1), "XL-1");
  EXPECT_EQ(category_name(SizeClass::kM, phy::Rate::kR5_5), "M-5.5");
}

TEST(CategoryTest, IndexNameRoundTrip) {
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    const auto cls = static_cast<SizeClass>(i / phy::kNumRates);
    const auto rate = static_cast<phy::Rate>(i % phy::kNumRates);
    EXPECT_EQ(category_name(i), category_name(cls, rate));
    EXPECT_EQ(category_index(cls, rate), i);
  }
}

class CategoryParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CategoryParamTest, IndexIsClassMajorRateMinor) {
  const auto [cls, rate] = GetParam();
  EXPECT_EQ(category_index(static_cast<SizeClass>(cls),
                           static_cast<phy::Rate>(rate)),
            static_cast<std::size_t>(cls) * 4 + rate);
}

INSTANTIATE_TEST_SUITE_P(All16, CategoryParamTest,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 4)));

}  // namespace
}  // namespace wlan::core

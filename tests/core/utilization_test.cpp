#include "core/utilization.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wlan::core {
namespace {

AnalysisResult synthetic_result(std::vector<double> utils) {
  AnalysisResult result;
  for (std::size_t i = 0; i < utils.size(); ++i) {
    SecondStats s;
    s.second = static_cast<std::int64_t>(i);
    s.cbt_us = utils[i] * 1e4;  // percent -> us per second
    result.seconds.push_back(s);
  }
  return result;
}

TEST(UtilizationSeriesTest, MatchesPerSecondValues) {
  const auto result = synthetic_result({10, 55, 90});
  const auto series = utilization_series(result);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_NEAR(series[0], 10.0, 1e-9);
  EXPECT_NEAR(series[1], 55.0, 1e-9);
  EXPECT_NEAR(series[2], 90.0, 1e-9);
}

TEST(UtilizationHistogramTest, CountsSecondsPerPercent) {
  const auto result = synthetic_result({55.4, 55.2, 55.4, 86.0});
  const auto hist = utilization_histogram(result);
  EXPECT_EQ(hist.total(), 4u);
  ASSERT_TRUE(hist.mode().has_value());
  EXPECT_NEAR(*hist.mode(), 55.5, 0.51);
}

TEST(UtilizationBinnerTest, MeanPerBin) {
  UtilizationBinner binner;
  binner.add(50.2, 10.0);
  binner.add(49.8, 20.0);  // both round to bin 50
  EXPECT_DOUBLE_EQ(binner.mean(50), 15.0);
  EXPECT_EQ(binner.count(50), 2u);
}

TEST(UtilizationBinnerTest, MinCountFiltersSparseBins) {
  UtilizationBinner binner;
  binner.add(60.0, 5.0);
  EXPECT_TRUE(std::isnan(binner.mean(60, 2)));
  binner.add(60.0, 7.0);
  EXPECT_DOUBLE_EQ(binner.mean(60, 2), 6.0);
}

TEST(UtilizationBinnerTest, EmptyBinIsNan) {
  UtilizationBinner binner;
  EXPECT_TRUE(std::isnan(binner.mean(42)));
  EXPECT_EQ(binner.count(42), 0u);
}

TEST(UtilizationBinnerTest, OutOfRangeInputsClamp) {
  UtilizationBinner binner;
  binner.add(-5.0, 1.0);
  binner.add(250.0, 2.0);
  EXPECT_EQ(binner.count(0), 1u);
  EXPECT_EQ(binner.count(100), 1u);
  EXPECT_TRUE(std::isnan(binner.mean(101)));
  EXPECT_TRUE(std::isnan(binner.mean(-1)));
}

TEST(UtilizationBinnerTest, NonFiniteValuesIgnored) {
  UtilizationBinner binner;
  binner.add(50.0, std::nan(""));
  EXPECT_EQ(binner.count(50), 0u);
}

TEST(UtilizationBinnerTest, SeriesAndAxisAligned) {
  UtilizationBinner binner;
  binner.add(32.0, 4.0);
  const auto xs = UtilizationBinner::axis(30, 35);
  const auto ys = binner.series(30, 35);
  ASSERT_EQ(xs.size(), 6u);
  ASSERT_EQ(ys.size(), 6u);
  EXPECT_DOUBLE_EQ(xs[2], 32.0);
  EXPECT_DOUBLE_EQ(ys[2], 4.0);
  EXPECT_TRUE(std::isnan(ys[0]));
}

}  // namespace
}  // namespace wlan::core

#include "core/theoretical.hpp"

#include <gtest/gtest.h>

namespace wlan::core {
namespace {

const DelayComponents d = DelayComponents::paper();

TEST(TheoreticalTest, ExchangeTimeHandComputed) {
  // 1024 B at 11 Mbps: DIFS 50 + DATA (192 + ceil(8*1058/11)=770) + SIFS 10
  // + ACK 304 = 1326 us.
  EXPECT_EQ(exchange_time(d, 1024, phy::Rate::kR11).count(),
            50 + 192 + 770 + 10 + 304);
}

TEST(TheoreticalTest, RtsCtsAddsFixedOverhead) {
  const auto plain = exchange_time(d, 1024, phy::Rate::kR11);
  TmtOptions opt;
  opt.rts_cts = true;
  const auto with = exchange_time(d, 1024, phy::Rate::kR11, opt);
  EXPECT_EQ((with - plain).count(), 352 + 10 + 304 + 10);
}

TEST(TheoreticalTest, BackoffExtendsExchange) {
  TmtOptions opt;
  opt.backoff = Microseconds{155};  // mean of CW 31 at 10 us slots
  EXPECT_EQ(exchange_time(d, 1024, phy::Rate::kR11, opt).count(),
            exchange_time(d, 1024, phy::Rate::kR11).count() + 155);
}

TEST(TheoreticalTest, TmtNeverExceedsNominalRate) {
  for (phy::Rate r : phy::kAllRates) {
    for (std::uint32_t size : {64u, 512u, 1472u}) {
      EXPECT_LT(theoretical_max_throughput_mbps(d, size, r),
                phy::rate_mbps(r));
    }
  }
}

TEST(TheoreticalTest, BestCaseMatchesJunEtAl) {
  // Jun et al. report ~6.1 Mbps TMT for full-MTU UDP payloads at 11 Mbps
  // with these parameters (mean backoff included).
  const double tmt = best_case_tmt_mbps(d);
  EXPECT_GT(tmt, 5.8);
  EXPECT_LT(tmt, 6.8);
}

TEST(TheoreticalTest, PaperPeakIsNearTmtScaledByUtilization) {
  // The paper's §5.2 observation: measured 4.9 Mbps at 84% utilization is
  // "closest to the achievable theoretical maximum".  0.84 x TMT lands in
  // the right neighbourhood of that measurement (the real mix was not all
  // full-MTU 11 Mbps frames, so the measured value sits a little below).
  EXPECT_NEAR(0.84 * best_case_tmt_mbps(d), 4.9, 0.8);
}

TEST(TheoreticalTest, EfficiencyDropsWithRate) {
  // Fixed PLCP/IFS overhead hurts fast rates relatively more: MAC
  // efficiency is highest at 1 Mbps.
  const double e1 = mac_efficiency(d, 1472, phy::Rate::kR1);
  const double e11 = mac_efficiency(d, 1472, phy::Rate::kR11);
  EXPECT_GT(e1, e11);
  EXPECT_GT(e1, 0.9);
  EXPECT_LT(e11, 0.7);
}

TEST(TheoreticalTest, EfficiencyGrowsWithFrameSize) {
  EXPECT_LT(mac_efficiency(d, 64, phy::Rate::kR11),
            mac_efficiency(d, 1472, phy::Rate::kR11));
}

TEST(TheoreticalTest, SmallFrameAtElevenBeatsLargeAtOne) {
  // The §6 headline, restated in TMT terms: raw per-exchange delivery rate
  // at 11 Mbps exceeds 1 Mbps for every frame size.
  for (std::uint32_t size : {64u, 400u, 1472u}) {
    EXPECT_GT(theoretical_max_throughput_mbps(d, size, phy::Rate::kR11),
              theoretical_max_throughput_mbps(d, size, phy::Rate::kR1));
  }
}

}  // namespace
}  // namespace wlan::core

// StreamingAnalyzer vs TraceAnalyzer: the push-based path must reproduce
// the batch path exactly — every per-second field, every acceptance sample,
// every figure bin, byte for byte.
#include "core/streaming.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/report.hpp"
#include "workload/scenario.hpp"

namespace wlan::core {
namespace {

workload::CellResult congested_cell(std::uint64_t seed = 62) {
  workload::CellConfig cell;
  cell.seed = seed;
  cell.num_users = 12;
  cell.per_user_pps = 40.0;
  cell.duration_s = 8.0;
  cell.warmup_s = 1.0;
  cell.rtscts_fraction = 0.2;  // exercise RTS/CTS counters too
  cell.profile.closed_loop = true;
  cell.profile.window = 2;
  return workload::run_cell(cell);
}

void expect_seconds_equal(const SecondStats& a, const SecondStats& b,
                          std::size_t i) {
  EXPECT_EQ(a.second, b.second) << i;
  EXPECT_DOUBLE_EQ(a.cbt_us, b.cbt_us) << i;
  EXPECT_EQ(a.bits_all, b.bits_all) << i;
  EXPECT_EQ(a.bits_good, b.bits_good) << i;
  EXPECT_EQ(a.data, b.data) << i;
  EXPECT_EQ(a.ack, b.ack) << i;
  EXPECT_EQ(a.rts, b.rts) << i;
  EXPECT_EQ(a.cts, b.cts) << i;
  EXPECT_EQ(a.beacon, b.beacon) << i;
  EXPECT_EQ(a.mgmt, b.mgmt) << i;
  for (std::size_t r = 0; r < phy::kNumRates; ++r) {
    EXPECT_DOUBLE_EQ(a.cbt_us_by_rate[r], b.cbt_us_by_rate[r]) << i;
    EXPECT_EQ(a.bytes_by_rate[r], b.bytes_by_rate[r]) << i;
    EXPECT_EQ(a.first_attempt_acked[r], b.first_attempt_acked[r]) << i;
    EXPECT_EQ(a.acked_by_rate[r], b.acked_by_rate[r]) << i;
    EXPECT_EQ(a.retries_by_rate[r], b.retries_by_rate[r]) << i;
  }
  EXPECT_EQ(a.tx_by_category, b.tx_by_category) << i;
}

TEST(StreamingAnalyzerTest, CollectingModeEqualsBatchAnalyze) {
  const auto cell = congested_cell();
  const auto batch = TraceAnalyzer{}.analyze(cell.trace);

  StreamingAnalyzer streaming;
  streaming.set_bounds(cell.trace.start_us, cell.trace.end_us);
  for (const auto& r : cell.trace.records) streaming.push(r);
  const auto pushed = streaming.finish();

  ASSERT_EQ(pushed.seconds.size(), batch.seconds.size());
  for (std::size_t i = 0; i < batch.seconds.size(); ++i) {
    expect_seconds_equal(pushed.seconds[i], batch.seconds[i], i);
  }
  ASSERT_EQ(pushed.acceptance.size(), batch.acceptance.size());
  for (std::size_t i = 0; i < batch.acceptance.size(); ++i) {
    EXPECT_EQ(pushed.acceptance[i].second, batch.acceptance[i].second);
    EXPECT_EQ(pushed.acceptance[i].category, batch.acceptance[i].category);
    EXPECT_DOUBLE_EQ(pushed.acceptance[i].delay_us,
                     batch.acceptance[i].delay_us);
  }
  EXPECT_EQ(pushed.total_frames, batch.total_frames);
  EXPECT_EQ(pushed.total_data, batch.total_data);
  EXPECT_EQ(pushed.total_acks, batch.total_acks);
  EXPECT_EQ(pushed.total_rts, batch.total_rts);
  EXPECT_EQ(pushed.total_cts, batch.total_cts);
  EXPECT_EQ(pushed.start_us, batch.start_us);
  ASSERT_EQ(pushed.senders.size(), batch.senders.size());
  for (const auto& [addr, st] : batch.senders) {
    const auto it = pushed.senders.find(addr);
    ASSERT_NE(it, pushed.senders.end());
    EXPECT_EQ(it->second.data_tx, st.data_tx);
    EXPECT_EQ(it->second.data_acked, st.data_acked);
    EXPECT_EQ(it->second.rts_tx, st.rts_tx);
    EXPECT_EQ(it->second.uses_rtscts, st.uses_rtscts);
  }
}

/// Drain mode: seconds and samples leave through the sink, the result's
/// vectors stay empty, and the figure accumulator state is bit-identical
/// to the batch add() path — checked through the rendered CSV bytes.
TEST(StreamingAnalyzerTest, DrainModeFiguresAreByteIdentical) {
  const auto cell = congested_cell();
  const auto batch = TraceAnalyzer{}.analyze(cell.trace);
  FigureAccumulator batch_acc;
  batch_acc.add(batch);

  FigureAccumulator drained_acc;
  FigureStreamSink sink(drained_acc);
  StreamingAnalyzer streaming({}, &sink);
  streaming.set_bounds(cell.trace.start_us, cell.trace.end_us);
  for (const auto& r : cell.trace.records) streaming.push(r);
  const auto drained = streaming.finish();
  drained_acc.add_senders(drained.senders);

  EXPECT_TRUE(drained.seconds.empty());
  EXPECT_TRUE(drained.acceptance.empty());
  EXPECT_EQ(drained.total_frames, batch.total_frames);
  EXPECT_EQ(drained_acc.seconds_absorbed(), batch_acc.seconds_absorbed());

  const std::string dir = ::testing::TempDir();
  const auto bytes_of = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string{std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>()};
  };
  const std::pair<FigureSeries, FigureSeries> figs[] = {
      {batch_acc.fig06_throughput_goodput(),
       drained_acc.fig06_throughput_goodput()},
      {batch_acc.fig08_busytime_share(), drained_acc.fig08_busytime_share()},
      {batch_acc.fig14_first_attempt_acked(),
       drained_acc.fig14_first_attempt_acked()},
      {batch_acc.fig15_acceptance_delay(),
       drained_acc.fig15_acceptance_delay()},
  };
  for (const auto& [a, b] : figs) {
    const std::string pa = dir + "batch_fig.csv", pb = dir + "drain_fig.csv";
    write_figure_csv(a, pa);
    write_figure_csv(b, pb);
    EXPECT_EQ(bytes_of(pa), bytes_of(pb)) << a.title;
    std::remove(pa.c_str());
    std::remove(pb.c_str());
  }

  // Fig. 5-style per-second series: the streaming CSV sink against the
  // batch writer.
  const std::string ps = dir + "stream_seconds.csv";
  const std::string pm = dir + "batch_seconds.csv";
  {
    FigureAccumulator acc2;
    FigureStreamSink figures(acc2);
    SecondsCsvSink seconds(ps);
    // Both sinks in one pass, like wlan_analyze.
    TeeSink tee({&figures, &seconds});
    StreamingAnalyzer s2({}, &tee);
    s2.set_bounds(cell.trace.start_us, cell.trace.end_us);
    for (const auto& r : cell.trace.records) s2.push(r);
    (void)s2.finish();
  }
  write_seconds_csv(batch, pm);
  EXPECT_EQ(bytes_of(ps), bytes_of(pm));
  std::remove(ps.c_str());
  std::remove(pm.c_str());
}

TEST(StreamingAnalyzerTest, UnsortedPushThrows) {
  StreamingAnalyzer streaming;
  trace::CaptureRecord a, b, c;
  a.time_us = 10'000;
  b.time_us = 5'000;  // 5 ms backwards: far beyond capture jitter
  c.time_us = 20'000;
  streaming.push(a);
  streaming.push(b);  // b is only held; a has no successor issue yet
  EXPECT_THROW(streaming.push(c), std::invalid_argument);
}

TEST(StreamingAnalyzerTest, BoundsPadEmptyTrailingSeconds) {
  StreamingAnalyzer streaming;
  streaming.set_bounds(0, 5'500'000);  // 5.5 s session, one early frame
  trace::CaptureRecord r;
  r.time_us = 100;
  r.type = mac::FrameType::kData;
  r.src = 2;
  r.size_bytes = 500;
  streaming.push(r);
  const auto result = streaming.finish();
  ASSERT_EQ(result.seconds.size(), 6u);
  EXPECT_GT(result.seconds[0].data, 0u);
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_EQ(result.seconds[i].data, 0u) << i;
    EXPECT_EQ(result.seconds[i].second, static_cast<std::int64_t>(i));
  }
}

/// Regression: session bounds extending far past the last ACK must not
/// drop acceptance samples in sink mode (the finish-time padding used to
/// prune the sample's second out of the utilization tail before flushing).
TEST(StreamingAnalyzerTest, LongTrailingPaddingKeepsAcceptanceSamples) {
  trace::Trace t;
  trace::CaptureRecord d;
  d.time_us = 100;
  d.type = mac::FrameType::kData;
  d.src = 2;
  d.dst = 3;
  d.seq = 5;
  d.size_bytes = 500;
  d.rate = phy::Rate::kR11;
  trace::CaptureRecord a;
  a.time_us = 700;  // within data airtime + SIFS + slack of the DATA start
  a.type = mac::FrameType::kAck;
  a.dst = 2;
  a.size_bytes = mac::kAckBytes;
  t.records = {d, a};
  t.start_us = 0;
  t.end_us = 25'000'000;  // 25 s session, all quiet after the exchange

  const auto batch = TraceAnalyzer{}.analyze(t);
  ASSERT_EQ(batch.acceptance.size(), 1u);

  struct Counter final : AnalysisSink {
    std::size_t seconds = 0, samples = 0;
    void on_second(const SecondStats&) override { ++seconds; }
    void on_acceptance(const AcceptanceSample&, double) override { ++samples; }
  } counter;
  StreamingAnalyzer streaming({}, &counter);
  streaming.set_bounds(t.start_us, t.end_us);
  for (const auto& r : t.records) streaming.push(r);
  (void)streaming.finish();
  EXPECT_EQ(counter.seconds, batch.seconds.size());
  EXPECT_EQ(counter.samples, 1u);
}

TEST(StreamingAnalyzerTest, NoRecordsMeansEmptyResult) {
  StreamingAnalyzer streaming;
  streaming.set_bounds(0, 10'000'000);
  const auto result = streaming.finish();
  EXPECT_TRUE(result.seconds.empty());
  EXPECT_EQ(result.total_frames, 0u);
}

}  // namespace
}  // namespace wlan::core

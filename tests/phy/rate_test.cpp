#include "phy/rate.hpp"

#include <gtest/gtest.h>

namespace wlan::phy {
namespace {

TEST(RateTest, KbpsValues) {
  EXPECT_EQ(rate_kbps(Rate::kR1), 1000u);
  EXPECT_EQ(rate_kbps(Rate::kR2), 2000u);
  EXPECT_EQ(rate_kbps(Rate::kR5_5), 5500u);
  EXPECT_EQ(rate_kbps(Rate::kR11), 11000u);
}

TEST(RateTest, MbpsValues) {
  EXPECT_DOUBLE_EQ(rate_mbps(Rate::kR5_5), 5.5);
  EXPECT_DOUBLE_EQ(rate_mbps(Rate::kR11), 11.0);
}

TEST(RateTest, NamesMatchPaperLegend) {
  EXPECT_EQ(rate_name(Rate::kR1), "1");
  EXPECT_EQ(rate_name(Rate::kR2), "2");
  EXPECT_EQ(rate_name(Rate::kR5_5), "5.5");
  EXPECT_EQ(rate_name(Rate::kR11), "11");
}

TEST(RateTest, IndicesDenseAndOrdered) {
  EXPECT_EQ(rate_index(Rate::kR1), 0u);
  EXPECT_EQ(rate_index(Rate::kR11), 3u);
  EXPECT_EQ(kAllRates.size(), kNumRates);
  for (std::size_t i = 0; i < kAllRates.size(); ++i) {
    EXPECT_EQ(rate_index(kAllRates[i]), i);
  }
}

TEST(RateTest, ParseAcceptsCanonicalForms) {
  EXPECT_EQ(parse_rate("1"), Rate::kR1);
  EXPECT_EQ(parse_rate("2"), Rate::kR2);
  EXPECT_EQ(parse_rate("5.5"), Rate::kR5_5);
  EXPECT_EQ(parse_rate("11"), Rate::kR11);
  EXPECT_EQ(parse_rate("11Mbps"), Rate::kR11);
  EXPECT_EQ(parse_rate("5.5 Mbps"), Rate::kR5_5);
}

TEST(RateTest, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_rate("3").has_value());
  EXPECT_FALSE(parse_rate("").has_value());
  EXPECT_FALSE(parse_rate("eleven").has_value());
  EXPECT_FALSE(parse_rate("1.0").has_value());
}

TEST(RateTest, LadderSaturatesAtEnds) {
  EXPECT_EQ(next_lower(Rate::kR1), Rate::kR1);
  EXPECT_EQ(next_higher(Rate::kR11), Rate::kR11);
}

TEST(RateTest, LadderStepsAreAdjacent) {
  EXPECT_EQ(next_higher(Rate::kR1), Rate::kR2);
  EXPECT_EQ(next_higher(Rate::kR2), Rate::kR5_5);
  EXPECT_EQ(next_higher(Rate::kR5_5), Rate::kR11);
  EXPECT_EQ(next_lower(Rate::kR11), Rate::kR5_5);
  EXPECT_EQ(next_lower(Rate::kR5_5), Rate::kR2);
  EXPECT_EQ(next_lower(Rate::kR2), Rate::kR1);
}

class RateRoundTrip : public ::testing::TestWithParam<Rate> {};

TEST_P(RateRoundTrip, NameParsesBack) {
  EXPECT_EQ(parse_rate(rate_name(GetParam())), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllRates, RateRoundTrip,
                         ::testing::ValuesIn(kAllRates.begin(), kAllRates.end()));

}  // namespace
}  // namespace wlan::phy

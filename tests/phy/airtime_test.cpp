#include "phy/airtime.hpp"

#include <gtest/gtest.h>

#include "mac/frame.hpp"

namespace wlan::phy {
namespace {

TEST(AirtimeTest, PlcpIsPaperValue) {
  EXPECT_EQ(kPlcpDuration.count(), 192);
}

TEST(AirtimeTest, ControlFrameDurationsMatchTable2) {
  // Table 2: D_RTS = 352 us (20 B at 1 Mbps + PLCP), D_CTS/D_ACK = 304 us.
  EXPECT_EQ(raw_airtime(mac::kRtsBytes, Rate::kR1).count(), 352);
  EXPECT_EQ(raw_airtime(mac::kCtsBytes, Rate::kR1).count(), 304);
  EXPECT_EQ(raw_airtime(mac::kAckBytes, Rate::kR1).count(), 304);
}

TEST(AirtimeTest, DataFormulaMatchesTable2Expression) {
  // D_DATA = 192 + 8*(34+size)/rate.
  EXPECT_EQ(data_airtime(1000, Rate::kR1).count(), 192 + 8 * 1034);
  EXPECT_EQ(data_airtime(1000, Rate::kR2).count(), 192 + 4 * 1034);
}

TEST(AirtimeTest, FractionalRatesRoundUp) {
  // 8*1034/11 = 752.0; 8*1035/11 = 752.7 -> 753.
  EXPECT_EQ(data_airtime(1000, Rate::kR11).count(), 192 + 752);
  EXPECT_EQ(data_airtime(1001, Rate::kR11).count(), 192 + 753);
}

TEST(AirtimeTest, ZeroPayloadStillCarriesHeader) {
  EXPECT_EQ(data_airtime(0, Rate::kR1).count(),
            192 + 8 * static_cast<int>(kMacOverheadBytes));
}

TEST(AirtimeTest, HigherRateNeverSlower) {
  for (std::uint32_t size : {0u, 64u, 1472u}) {
    EXPECT_LE(data_airtime(size, Rate::kR2), data_airtime(size, Rate::kR1));
    EXPECT_LE(data_airtime(size, Rate::kR5_5), data_airtime(size, Rate::kR2));
    EXPECT_LE(data_airtime(size, Rate::kR11), data_airtime(size, Rate::kR5_5));
  }
}

TEST(AirtimeTest, PaperHeadlineAirtimeOrdering) {
  // §6: a large frame at 11 Mbps costs less air than a small one at 1 Mbps.
  EXPECT_LT(data_airtime(1472, Rate::kR11), data_airtime(300, Rate::kR1));
}

class AirtimeMonotonicity
    : public ::testing::TestWithParam<std::tuple<Rate, std::uint32_t>> {};

TEST_P(AirtimeMonotonicity, LargerFramesTakeLonger) {
  const auto [rate, size] = GetParam();
  EXPECT_LT(data_airtime(size, rate), data_airtime(size + 100, rate));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AirtimeMonotonicity,
    ::testing::Combine(::testing::ValuesIn(kAllRates.begin(), kAllRates.end()),
                       ::testing::Values(0u, 100u, 400u, 800u, 1200u)));

}  // namespace
}  // namespace wlan::phy

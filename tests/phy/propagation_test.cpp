#include "phy/propagation.hpp"

#include <gtest/gtest.h>

namespace wlan::phy {
namespace {

PropagationConfig no_shadow() {
  PropagationConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  return cfg;
}

TEST(PositionTest, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0, 0}, {3, 4, 0}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1, 0}, {1, 1, 2}), 0.0);  // floors ignored
}

TEST(PropagationTest, PowerDecreasesWithDistance) {
  Propagation prop(no_shadow());
  const Position tx{0, 0, 0};
  double prev = prop.rx_power_dbm(tx, {2, 0, 0});
  for (double d : {5.0, 10.0, 20.0, 40.0, 80.0}) {
    const double p = prop.rx_power_dbm(tx, {d, 0, 0});
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(PropagationTest, ReferenceLossAtOneMetre) {
  Propagation prop(no_shadow());
  // Distances under 1 m clamp to 1 m: tx_power - reference_loss.
  EXPECT_DOUBLE_EQ(prop.rx_power_dbm({0, 0, 0}, {0.5, 0, 0}),
                   no_shadow().tx_power_dbm - no_shadow().reference_loss_db);
}

TEST(PropagationTest, PathLossExponentSlope) {
  auto cfg = no_shadow();
  cfg.path_loss_exponent = 3.0;
  Propagation prop(cfg);
  const double p10 = prop.rx_power_dbm({0, 0, 0}, {10, 0, 0});
  const double p100 = prop.rx_power_dbm({0, 0, 0}, {100, 0, 0});
  EXPECT_NEAR(p10 - p100, 30.0, 1e-9);  // 10n dB per decade
}

TEST(PropagationTest, FloorPenaltyApplied) {
  Propagation prop(no_shadow());
  const double same = prop.rx_power_dbm({0, 0, 0}, {10, 0, 0});
  const double above = prop.rx_power_dbm({0, 0, 0}, {10, 0, 1});
  const double two_up = prop.rx_power_dbm({0, 0, 0}, {10, 0, 2});
  EXPECT_NEAR(same - above, no_shadow().floor_penalty_db, 1e-9);
  EXPECT_NEAR(same - two_up, 2 * no_shadow().floor_penalty_db, 1e-9);
}

TEST(PropagationTest, SnrAgainstNoiseFloor) {
  Propagation prop(no_shadow());
  const Position a{0, 0, 0}, b{10, 0, 0};
  EXPECT_NEAR(prop.snr_db(a, b),
              prop.rx_power_dbm(a, b) - no_shadow().noise_floor_dbm, 1e-12);
}

TEST(PropagationTest, CarrierSenseAndReceivabilityThresholds) {
  Propagation prop(no_shadow());
  const Position tx{0, 0, 0};
  EXPECT_TRUE(prop.senses_carrier(tx, {5, 0, 0}));
  EXPECT_TRUE(prop.receivable(tx, {5, 0, 0}));
  // Very far away: below both thresholds (with exponent 3, ~1 km is gone).
  EXPECT_FALSE(prop.senses_carrier(tx, {2000, 0, 0}));
  EXPECT_FALSE(prop.receivable(tx, {2000, 0, 0}));
}

TEST(PropagationTest, ShadowingIsFrozenPerLink) {
  PropagationConfig cfg;
  cfg.shadowing_sigma_db = 6.0;
  Propagation prop(cfg, 99);
  const Position a{3, 4, 0}, b{20, 9, 0};
  const double p1 = prop.rx_power_dbm(a, b);
  const double p2 = prop.rx_power_dbm(a, b);
  EXPECT_DOUBLE_EQ(p1, p2);
}

TEST(PropagationTest, ShadowingIsSymmetric) {
  PropagationConfig cfg;
  cfg.shadowing_sigma_db = 6.0;
  Propagation prop(cfg, 99);
  const Position a{3, 4, 0}, b{20, 9, 0};
  EXPECT_DOUBLE_EQ(prop.rx_power_dbm(a, b), prop.rx_power_dbm(b, a));
}

TEST(PropagationTest, ShadowingVariesAcrossLinks) {
  PropagationConfig cfg;
  cfg.shadowing_sigma_db = 6.0;
  Propagation prop(cfg, 99);
  Propagation flat(no_shadow());
  // Same distance, different link -> generally different shadowing draw.
  const double d1 = prop.rx_power_dbm({0, 0, 0}, {10, 0, 0}) -
                    flat.rx_power_dbm({0, 0, 0}, {10, 0, 0});
  const double d2 = prop.rx_power_dbm({50, 7, 0}, {60, 7, 0}) -
                    flat.rx_power_dbm({50, 7, 0}, {60, 7, 0});
  EXPECT_NE(d1, d2);
}

TEST(DbmConversionTest, RoundTrip) {
  for (double dbm : {-90.0, -50.0, 0.0, 15.0}) {
    EXPECT_NEAR(mw_to_dbm(dbm_to_mw(dbm)), dbm, 1e-9);
  }
  EXPECT_DOUBLE_EQ(dbm_to_mw(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dbm_to_mw(10.0), 10.0);
}

}  // namespace
}  // namespace wlan::phy

#include "phy/error_model.hpp"

#include <gtest/gtest.h>

namespace wlan::phy {
namespace {

TEST(ErrorModelTest, BerBoundedByHalf) {
  for (Rate r : kAllRates) {
    EXPECT_LE(bit_error_rate(r, -20.0), 0.5);
    EXPECT_GE(bit_error_rate(r, -20.0), 0.0);
    EXPECT_GE(bit_error_rate(r, 40.0), 0.0);
  }
}

TEST(ErrorModelTest, BerMonotonicInSnr) {
  for (Rate r : kAllRates) {
    double prev = bit_error_rate(r, -10.0);
    for (double snr = -8.0; snr <= 20.0; snr += 2.0) {
      const double ber = bit_error_rate(r, snr);
      EXPECT_LE(ber, prev + 1e-15) << "rate " << rate_name(r) << " snr " << snr;
      prev = ber;
    }
  }
}

TEST(ErrorModelTest, HigherRatesNeedMoreSnr) {
  // At a fixed mid-range SNR the BER ordering must follow modulation
  // robustness: 1 < 2 < 5.5 < 11 — this drives every rate-adaptation story
  // in the paper.
  for (double snr : {2.0, 4.0, 6.0, 8.0}) {
    EXPECT_LE(bit_error_rate(Rate::kR1, snr), bit_error_rate(Rate::kR2, snr));
    EXPECT_LE(bit_error_rate(Rate::kR2, snr), bit_error_rate(Rate::kR5_5, snr));
    EXPECT_LE(bit_error_rate(Rate::kR5_5, snr),
              bit_error_rate(Rate::kR11, snr));
  }
}

TEST(ErrorModelTest, FrameSuccessLimits) {
  for (Rate r : kAllRates) {
    EXPECT_GT(frame_success_probability(r, 1500, 35.0), 0.999);
    EXPECT_LT(frame_success_probability(r, 1500, -10.0), 1e-6);
  }
}

TEST(ErrorModelTest, LongerFramesFailMore) {
  for (Rate r : kAllRates) {
    const double snr = 6.0;
    EXPECT_GE(frame_success_probability(r, 100, snr),
              frame_success_probability(r, 1500, snr));
  }
}

TEST(ErrorModelTest, RequiredSnrIsConsistentInverse) {
  for (Rate r : kAllRates) {
    const double snr = required_snr_db(r, 1024, 0.9);
    const double p = frame_success_probability(r, 1024, snr);
    EXPECT_NEAR(p, 0.9, 0.01) << "rate " << rate_name(r);
  }
}

TEST(ErrorModelTest, RequiredSnrOrderedByRate) {
  const double s1 = required_snr_db(Rate::kR1, 1024, 0.9);
  const double s2 = required_snr_db(Rate::kR2, 1024, 0.9);
  const double s55 = required_snr_db(Rate::kR5_5, 1024, 0.9);
  const double s11 = required_snr_db(Rate::kR11, 1024, 0.9);
  EXPECT_LT(s1, s2);
  EXPECT_LT(s2, s55);
  EXPECT_LT(s55, s11);
  // Sanity: thresholds live in a plausible indoor range.
  EXPECT_GT(s1, -2.0);
  EXPECT_LT(s11, 20.0);
}

TEST(ErrorModelTest, CaptureThresholdPositive) {
  EXPECT_GT(kCaptureThresholdDb, 0.0);
}

struct SweepParam {
  Rate rate;
  double target;
};

class RequiredSnrSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RequiredSnrSweep, InverseHoldsAcrossTargets) {
  const auto [rate, target] = GetParam();
  const double snr = required_snr_db(rate, 512, target);
  EXPECT_NEAR(frame_success_probability(rate, 512, snr), target, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RequiredSnrSweep,
    ::testing::Values(SweepParam{Rate::kR1, 0.5}, SweepParam{Rate::kR1, 0.99},
                      SweepParam{Rate::kR2, 0.8}, SweepParam{Rate::kR5_5, 0.9},
                      SweepParam{Rate::kR11, 0.5},
                      SweepParam{Rate::kR11, 0.95}));

}  // namespace
}  // namespace wlan::phy

#!/usr/bin/env python3
"""wlan_lint — repo-specific static analysis for the bit-identity contract.

Every run of this simulator must be a pure function of (seed, config):
byte-identical across thread counts, scalar-vs-batched reception, and
observability on/off.  The golden CSVs and oracle suites enforce that
dynamically, but only on paths the tests cover.  This tool checks the
*hazard classes* statically, at review time:

  wall-clock           std::chrono clocks, std::random_device, rand/srand,
                       time() anywhere in sim-affecting code.  Wall time is
                       the canonical way to break (seed, config) purity.
  unordered-iteration  range-for / .begin() iteration over
                       std::unordered_map / std::unordered_set.  Iteration
                       order is libstdc++-version- and insertion-history-
                       dependent; if it feeds a report, CSV, manifest or
                       figure accumulator the output is only accidentally
                       stable.  Either iterate a sorted/deterministic
                       structure or prove order-independence and annotate.
  rng-seed             util::Rng must be seeded from util::mix_seed or a
                       config-derived seed expression.  Literal seeds
                       correlate streams; wall-clock seeds destroy replay.
  layer-dag            #include edges must follow the ten-layer DAG in
                       docs/ARCHITECTURE.md.  The CMake link graph already
                       fails illegal *compiled* edges, but header-only
                       includes compile silently; this closes that gap.

Suppression syntax (on the flagged line, or in the comment block directly
above it — the directive covers the rest of its comment block and the first
code line that follows):

    // wlan-lint: allow(<rule>) — <reason>

A reason is mandatory: a suppression without one is itself a finding.
Several rules may be allowed at once: allow(rule-a, rule-b) — reason.

Usage:
    tools/wlan_lint.py [--root DIR] [--rule NAME]... [PATH]...
    tools/wlan_lint.py --list-rules

With no PATH arguments, scans src/, bench/, and examples/ under --root
(default: the repo containing this script).  Exit status: 0 clean,
1 findings, 2 usage/internal error.  Diagnostics: file:line: rule: message.

Stdlib only — must run on a bare CI image before any toolchain install.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Layer DAG (docs/ARCHITECTURE.md).  Direct dependencies; the checker takes
# the reflexive transitive closure because including a header of a
# transitive dependency is legal (the CMake link graph is PUBLIC).
# --------------------------------------------------------------------------

DIRECT_DEPS = {
    "util": set(),
    "obs": {"util"},
    "phy": {"obs", "util"},
    "mac": {"phy", "util"},
    "rate": {"phy"},
    "trace": {"mac", "phy", "util"},
    "core": {"trace", "mac", "phy", "util"},
    "sim": {"trace", "mac", "rate", "phy", "obs", "util"},
    "workload": {"sim", "phy", "util"},
    "exp": {"workload", "core", "obs"},
}

RULES = ("wall-clock", "unordered-iteration", "rng-seed", "layer-dag")

EXTS = (".cpp", ".hpp", ".h", ".cc", ".hh")


def closure(layer: str) -> set:
    seen = {layer}
    work = [layer]
    while work:
        for dep in DIRECT_DEPS.get(work.pop(), ()):
            if dep not in seen:
                seen.add(dep)
                work.append(dep)
    return seen


ALLOWED_INCLUDES = {layer: closure(layer) for layer in DIRECT_DEPS}


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


# --------------------------------------------------------------------------
# Comment / string stripping.  Line-oriented: the result has the same line
# numbering as the input, with comments and string/char literal *contents*
# blanked out (quotes kept so tokenization stays sane).
# --------------------------------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                break
            out.append("\n")
            i = j + 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j == -1:
                j = n
            out.append("\n" * text.count("\n", i, j))
            i = j + 2
        elif c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                if i < n and text[i] == "\n":
                    out.append("\n")
                i += 1
            out.append(quote)
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Suppressions: // wlan-lint: allow(rule-a, rule-b) — reason
# Collected from the ORIGINAL text (they live in comments).
# --------------------------------------------------------------------------

ALLOW_RE = re.compile(
    r"//\s*wlan-lint:\s*allow\(([a-z\-,\s]+)\)\s*(?:—|--|-)?\s*(.*)")


def collect_suppressions(lines):
    """Return ({line_no: set(rules)}, [Finding for malformed suppressions]).

    A suppression covers the line it sits on and, when it sits in a comment
    block, every remaining comment line of that block plus the first code
    line after it.  That lets a multi-line rationale comment carry the
    directive on its first line.
    """
    allowed = {}
    bad = []
    n = len(lines)
    for idx, line in enumerate(lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            if "wlan-lint:" in line and "allow" not in line:
                bad.append(Finding("", idx, "suppression",
                                   "unrecognized wlan-lint directive"))
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        reason = m.group(2).strip()
        unknown = rules - set(RULES)
        if unknown:
            bad.append(Finding("", idx, "suppression",
                               f"allow() names unknown rule(s): "
                               f"{', '.join(sorted(unknown))}"))
        if not reason:
            bad.append(Finding("", idx, "suppression",
                               "suppression without a reason — write "
                               "`// wlan-lint: allow(rule) — why`"))
            continue
        allowed.setdefault(idx, set()).update(rules)
        # Extend through the rest of the comment block to the next code line.
        k = idx + 1
        while k <= n and lines[k - 1].lstrip().startswith("//"):
            allowed.setdefault(k, set()).update(rules)
            k += 1
        if k <= n:
            allowed.setdefault(k, set()).update(rules)
    return allowed, bad


# --------------------------------------------------------------------------
# Rule: wall-clock
# --------------------------------------------------------------------------

WALL_CLOCK_PATTERNS = (
    (re.compile(r"std::chrono::(?:system_clock|steady_clock|"
                r"high_resolution_clock)"),
     "wall-clock read ({m}) — simulation state must advance on the "
     "simulated clock only"),
    (re.compile(r"std::random_device|(?<![\w:])random_device\b"),
     "std::random_device is non-deterministic — seed from util::mix_seed"),
    (re.compile(r"(?<![\w:.])s?rand\s*\("),
     "C rand()/srand() — use util::Rng"),
    (re.compile(r"(?<![\w:.>])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0|&|\))"),
     "time() wall-clock read — runs must be pure functions of "
     "(seed, config)"),
    (re.compile(r"(?<![\w:.])(?:std::)?clock\s*\(\s*\)"),
     "clock() wall-clock read"),
    (re.compile(r"gettimeofday|clock_gettime"),
     "wall-clock syscall ({m})"),
)


def check_wall_clock(path, lines):
    findings = []
    for idx, line in enumerate(lines, start=1):
        for pat, msg in WALL_CLOCK_PATTERNS:
            m = pat.search(line)
            if m:
                findings.append(Finding(path, idx, "wall-clock",
                                        msg.format(m=m.group(0))))
    return findings


# --------------------------------------------------------------------------
# Rule: unordered-iteration
# --------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set)\s*<[^;{()]*?>[&\s]+(\w+)\s*[;={(,)]")
UNORDERED_TYPE_RE = re.compile(r"std::unordered_(?:map|set)\b")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^)]*)\)")
BEGIN_RE = re.compile(r"(?<![\w.>:])(\w+)\s*[.]\s*(?:begin|cbegin)\s*\(")


def companion_header_text(path):
    """For foo.cpp, the stripped text of a sibling foo.hpp/h/hh (members of
    the class being implemented are declared there, not in the .cpp)."""
    stem, ext = os.path.splitext(path)
    if ext not in (".cpp", ".cc"):
        return ""
    for hext in (".hpp", ".h", ".hh"):
        hp = stem + hext
        if os.path.exists(hp):
            try:
                with open(hp, encoding="utf-8", errors="replace") as f:
                    return strip_comments_and_strings(f.read())
            except OSError:
                return ""
    return ""


def check_unordered_iteration(path, text, lines):
    findings = []
    # Pass 1: names whose declared type is an unordered container.  Covers
    # locals, parameters, and members declared in this file or its
    # companion header.
    names = set(UNORDERED_DECL_RE.findall(text))
    names |= set(UNORDERED_DECL_RE.findall(companion_header_text(path)))
    for idx, line in enumerate(lines, start=1):
        # Direct iteration over a just-declared-inline unordered type.
        for m in RANGE_FOR_RE.finditer(line):
            body = m.group(1)
            if ":" not in body:
                continue
            range_expr = body.rsplit(":", 1)[1]
            idents = set(re.findall(r"\b\w+\b", range_expr))
            if idents & names or UNORDERED_TYPE_RE.search(range_expr):
                findings.append(Finding(
                    path, idx, "unordered-iteration",
                    "range-for over std::unordered container "
                    f"({(idents & names) and sorted(idents & names)[0] or 'inline'}) — "
                    "iteration order is implementation-defined; sort first, "
                    "use util::FlatMap/a vector, or prove order-independence "
                    "and annotate"))
        for m in BEGIN_RE.finditer(line):
            if m.group(1) in names:
                findings.append(Finding(
                    path, idx, "unordered-iteration",
                    f"iterator walk over std::unordered container "
                    f"({m.group(1)}) — iteration order is "
                    "implementation-defined"))
    return findings


# --------------------------------------------------------------------------
# Rule: rng-seed
# --------------------------------------------------------------------------

# util::Rng construction forms: declarations with initializer, temporaries,
# assignments, and ctor-init-list entries whose member name contains "rng".
# Seed expressions may nest one level of parentheses (mix_seed(...) calls).
_ARGS = r"((?:[^(){}]|\([^()]*\))*)"
RNG_DECL_RE = re.compile(r"\b(?:util::)?Rng\s+\w+\s*[({]" + _ARGS + r"[)}]")
RNG_TEMP_RE = re.compile(r"\b(?:util::)?Rng\s*[({]" + _ARGS + r"[)}]")
RNG_INIT_LIST_RE = re.compile(
    r"\b(\w*rng\w*)\s*[({]" + _ARGS + r"[)}]\s*[,{]")

LITERAL_SEED_RE = re.compile(
    r"^\s*(?:0[xX][0-9a-fA-F']+|\d[\d']*)(?:[uU]?[lL]{0,2})?\s*$")
WALL_SEED_RE = re.compile(r"random_device|chrono|time\s*\(")


def seed_expr_findings(path, idx, expr):
    expr = expr.strip()
    if not expr:
        return []  # default-constructed: the documented fixed default stream
    if WALL_SEED_RE.search(expr):
        return [Finding(path, idx, "rng-seed",
                        f"util::Rng seeded from wall clock / random_device "
                        f"({expr!r}) — derive from util::mix_seed or a "
                        "config seed")]
    # Strip literal-only subexpressions: `0x1234 ^ 99ULL` is still literal.
    residue = re.sub(r"(?:0[xX][0-9a-fA-F']+|\b\d[\d']*)(?:[uU]?[lL]{0,2})?",
                     "", expr)
    if not re.search(r"[A-Za-z_]", residue):
        return [Finding(path, idx, "rng-seed",
                        f"util::Rng seeded from a literal ({expr!r}) — "
                        "literal seeds correlate streams; derive from "
                        "util::mix_seed or a config seed")]
    return []


def check_rng_seed(path, lines):
    findings = []
    for idx, line in enumerate(lines, start=1):
        seen_spans = []
        for pat, group in ((RNG_DECL_RE, 1), (RNG_TEMP_RE, 1)):
            for m in pat.finditer(line):
                span = m.span()
                if any(s[0] <= span[0] < s[1] for s in seen_spans):
                    continue
                seen_spans.append(span)
                findings.extend(seed_expr_findings(path, idx, m.group(group)))
        for m in RNG_INIT_LIST_RE.finditer(line):
            name = m.group(1)
            if "rng" not in name.lower():
                continue
            if any(s[0] <= m.start() < s[1] for s in seen_spans):
                continue
            findings.extend(seed_expr_findings(path, idx, m.group(2)))
    return findings


# --------------------------------------------------------------------------
# Rule: layer-dag
# --------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def check_layer_dag(path, rel, lines):
    parts = rel.replace(os.sep, "/").split("/")
    if len(parts) < 3 or parts[0] != "src":
        return []  # bench/examples/tests may include anything
    layer = parts[1]
    allowed = ALLOWED_INCLUDES.get(layer)
    if allowed is None:
        return [Finding(path, 1, "layer-dag",
                        f"unknown layer directory src/{layer}/ — add it to "
                        "the DAG in docs/ARCHITECTURE.md and tools/wlan_lint.py")]
    findings = []
    for idx, line in enumerate(lines, start=1):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        inc = m.group(1)
        inc_layer = inc.split("/", 1)[0]
        if inc_layer not in DIRECT_DEPS:
            continue  # non-layer include (local header, third-party)
        if inc_layer not in allowed:
            findings.append(Finding(
                path, idx, "layer-dag",
                f"src/{layer}/ must not include \"{inc}\" — the "
                f"architecture DAG permits {layer} -> "
                f"{{{', '.join(sorted(allowed - {layer})) or 'nothing'}}} only "
                "(docs/ARCHITECTURE.md)"))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def lint_file(path, rel, active_rules):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as e:
        return [Finding(path, 0, "io", str(e))]

    raw_lines = raw.splitlines()
    stripped = strip_comments_and_strings(raw)
    code_lines = stripped.splitlines()
    # Keep line counts aligned even if the file ends without a newline.
    while len(code_lines) < len(raw_lines):
        code_lines.append("")

    allowed, bad_suppressions = collect_suppressions(raw_lines)
    findings = []
    for f in bad_suppressions:
        f.path = path
        findings.append(f)

    checks = []
    if "wall-clock" in active_rules:
        checks.append(check_wall_clock(path, code_lines))
    if "unordered-iteration" in active_rules:
        checks.append(check_unordered_iteration(path, stripped, code_lines))
    if "rng-seed" in active_rules:
        checks.append(check_rng_seed(path, code_lines))
    if "layer-dag" in active_rules:
        # Raw lines: include paths are string literals, which the stripper
        # blanks.  INCLUDE_RE anchors at column 0 so comments can't match.
        checks.append(check_layer_dag(path, rel, raw_lines))

    for group in checks:
        for f in group:
            if f.rule in allowed.get(f.line, ()):
                continue
            findings.append(f)
    return findings


def iter_sources(root, paths):
    if paths:
        for p in paths:
            ap = os.path.abspath(p)
            if os.path.isdir(ap):
                yield from iter_sources(root, sorted(
                    os.path.join(ap, e) for e in os.listdir(ap)))
            elif ap.endswith(EXTS):
                yield ap
        return
    for sub in ("src", "bench", "examples"):
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(EXTS):
                    yield os.path.join(dirpath, name)


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="wlan_lint",
        description="repo-specific determinism & layering lint "
                    "(see docs/STATIC_ANALYSIS.md)")
    ap.add_argument("paths", nargs="*",
                    help="files or directories (default: src bench examples)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--rule", action="append", choices=RULES, default=None,
                    help="run only the named rule(s)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the summary line")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    root = os.path.abspath(
        args.root or os.path.join(os.path.dirname(__file__), os.pardir))
    active = tuple(args.rule) if args.rule else RULES

    all_findings = []
    nfiles = 0
    for path in iter_sources(root, args.paths):
        nfiles += 1
        rel = os.path.relpath(path, root)
        for f in lint_file(path, rel, active):
            f.path = os.path.relpath(f.path, root)
            all_findings.append(f)

    all_findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in all_findings:
        print(f)
    if not args.quiet:
        status = "clean" if not all_findings else \
            f"{len(all_findings)} finding(s)"
        print(f"wlan_lint: {nfiles} file(s), {status}", file=sys.stderr)
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main())
